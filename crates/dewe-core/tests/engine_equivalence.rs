//! The deadline-heap engine must be observationally identical to the
//! original implementation that kept per-workflow `HashMap` in-flight
//! tables and scanned every running job on each timeout check.
//!
//! A reference copy of that implementation lives in this file, extended
//! with the same retry budget / backoff / dead-letter semantics the real
//! engine grew. Both engines are driven through randomized interleavings
//! of submissions, Running/Completed/Failed acknowledgments (including
//! stale-attempt re-acks and duplicate completions from timeout races)
//! and timeout scans, asserting after every step that they emit the same
//! action sequence, the same statistics and the same next deadline.
//!
//! A second property drives the real engine while journaling its inputs,
//! recovers a twin from the journal mid-run, and asserts the twin is
//! observationally identical from that point on.

use std::collections::HashMap;
use std::sync::Arc;

use dewe_core::realtime::{recover, JournalRecord, Registry};
use dewe_core::{
    AckKind, AckMsg, Action, DispatchMsg, EngineConfig, EngineCore, EngineStats, EnsembleEngine,
    RetryPolicy, TimerBackend,
};
use dewe_dag::{DependencyTracker, EnsembleJobId, JobId, JobState, Workflow, WorkflowId};
use dewe_montage::{random_layered, RandomDagConfig};
use proptest::prelude::*;

// Allocating shims over the sink-based [`EngineCore`] surface: the driver
// below compares whole per-step action vectors, so collect them.

fn submit_step<E: EngineCore>(e: &mut E, wf: Arc<Workflow>, now: f64) -> (WorkflowId, Vec<Action>) {
    let mut actions = Vec::new();
    let id = e.submit_workflow(wf, now, &mut actions);
    (id, actions)
}

fn ack_step<E: EngineCore>(e: &mut E, ack: AckMsg, now: f64) -> Vec<Action> {
    let mut actions = Vec::new();
    e.on_ack(ack, now, &mut actions);
    actions
}

fn scan_step<E: EngineCore>(e: &mut E, now: f64) -> Vec<Action> {
    let mut actions = Vec::new();
    e.check_timeouts(now, &mut actions);
    actions
}

// ---------------------------------------------------------------------------
// Reference implementation: the pre-heap engine, scan-everything flavor.
// ---------------------------------------------------------------------------

struct RefWorkflow {
    workflow: Arc<Workflow>,
    tracker: DependencyTracker,
    submitted_at: f64,
    /// (deadline, attempt, deferred) per in-flight job — the old sparse
    /// table, with `deferred` marking a parked backoff retry.
    inflight: HashMap<JobId, (f64, u32, bool)>,
    done: bool,
    dead_lettered: u64,
}

struct ReferenceEngine {
    workflows: Vec<RefWorkflow>,
    config: EngineConfig,
    stats: EngineStats,
    terminal_emitted: bool,
}

impl ReferenceEngine {
    fn new(config: EngineConfig) -> Self {
        Self {
            workflows: Vec::new(),
            config,
            stats: EngineStats::default(),
            terminal_emitted: false,
        }
    }

    fn submit_workflow(&mut self, workflow: Arc<Workflow>, now: f64) -> (WorkflowId, Vec<Action>) {
        let id = WorkflowId::from_index(self.workflows.len());
        let mut state = RefWorkflow {
            tracker: DependencyTracker::new(&workflow),
            workflow,
            submitted_at: now,
            inflight: HashMap::new(),
            done: false,
            dead_lettered: 0,
        };
        let mut actions = Vec::new();
        for job in state.tracker.take_ready() {
            state.inflight.insert(job, (self.dispatch_deadline(now), 1, false));
            self.stats.dispatches += 1;
            actions.push(Action::Dispatch(DispatchMsg::new(EnsembleJobId::new(id, job), 1)));
        }
        self.stats.workflows_submitted += 1;
        self.terminal_emitted = false;
        if state.tracker.is_complete() {
            state.done = true;
            self.stats.workflows_completed += 1;
            actions.push(Action::WorkflowCompleted { workflow: id, makespan_secs: 0.0 });
            self.workflows.push(state);
            self.maybe_all_done(&mut actions);
        } else {
            self.workflows.push(state);
        }
        (id, actions)
    }

    fn dispatch_deadline(&self, now: f64) -> f64 {
        match self.config.checkout_timeout_secs {
            Some(t) => now + t,
            None => f64::INFINITY,
        }
    }

    fn on_ack(&mut self, ack: AckMsg, now: f64) -> Vec<Action> {
        let wf = ack.job.workflow;
        let job = ack.job.job;
        let mut actions = Vec::new();
        match ack.kind {
            AckKind::Running => {
                let state = &mut self.workflows[wf.index()];
                let timeout =
                    state.workflow.job(job).effective_timeout(self.config.default_timeout_secs);
                if let Some((deadline, attempt, deferred)) = state.inflight.get_mut(&job) {
                    if *attempt == ack.attempt && !*deferred {
                        *deadline = now + timeout;
                    }
                }
                state.tracker.mark_running(job);
            }
            AckKind::Completed => {
                let dd = self.dispatch_deadline(now);
                let state = &mut self.workflows[wf.index()];
                match state.tracker.state(job) {
                    JobState::Completed | JobState::Abandoned => {
                        self.stats.duplicate_completions += 1;
                        return actions;
                    }
                    _ => {}
                }
                state.inflight.remove(&job);
                let workflow = Arc::clone(&state.workflow);
                state.tracker.complete(&workflow, job);
                self.stats.jobs_completed += 1;
                for next in state.tracker.take_ready() {
                    state.inflight.insert(next, (dd, 1, false));
                    self.stats.dispatches += 1;
                    actions
                        .push(Action::Dispatch(DispatchMsg::new(EnsembleJobId::new(wf, next), 1)));
                }
                if state.tracker.is_complete() && !state.done {
                    state.done = true;
                    self.stats.workflows_completed += 1;
                    actions.push(Action::WorkflowCompleted {
                        workflow: wf,
                        makespan_secs: now - state.submitted_at,
                    });
                    self.maybe_all_done(&mut actions);
                } else if state.tracker.is_settled() && !state.done {
                    state.done = true;
                    self.stats.workflows_abandoned += 1;
                    actions.push(Action::WorkflowAbandoned {
                        workflow: wf,
                        dead_lettered: state.dead_lettered,
                        abandoned_jobs: state.tracker.stats().abandoned,
                    });
                    self.maybe_all_done(&mut actions);
                }
            }
            AckKind::Failed => {
                // Mirror the engine's stale-failure fence: a Failed ack
                // for a superseded attempt must not burn retry budget.
                let stale = self.workflows[wf.index()]
                    .inflight
                    .get(&job)
                    .is_some_and(|&(_, attempt, _)| attempt > ack.attempt);
                if stale {
                    self.stats.stale_failures_ignored += 1;
                } else {
                    self.attempt_failed(wf, job, ack.attempt, now, &mut actions);
                }
            }
        }
        actions
    }

    fn attempt_failed(
        &mut self,
        wf: WorkflowId,
        job: JobId,
        failed_attempt: u32,
        now: f64,
        actions: &mut Vec<Action>,
    ) {
        let dd = self.dispatch_deadline(now);
        let state = &mut self.workflows[wf.index()];
        match state.tracker.state(job) {
            // Mirrors the engine: failure evidence for a terminal job is
            // counted as stale, not dropped silently.
            JobState::Completed | JobState::Abandoned => {
                self.stats.stale_failures_ignored += 1;
                return;
            }
            _ => {}
        }
        if self.config.retry.max_attempts.is_some_and(|cap| failed_attempt >= cap) {
            state.inflight.remove(&job);
            state.dead_lettered += 1;
            let workflow = Arc::clone(&state.workflow);
            let abandoned = state.tracker.abandon(&workflow, job);
            self.stats.dead_lettered += 1;
            self.stats.jobs_abandoned += abandoned as u64;
            actions.push(Action::JobDeadLettered {
                job: EnsembleJobId::new(wf, job),
                attempts: failed_attempt,
                abandoned_jobs: abandoned,
            });
            let state = &mut self.workflows[wf.index()];
            if state.tracker.is_settled() && !state.done {
                state.done = true;
                self.stats.workflows_abandoned += 1;
                actions.push(Action::WorkflowAbandoned {
                    workflow: wf,
                    dead_lettered: state.dead_lettered,
                    abandoned_jobs: state.tracker.stats().abandoned,
                });
                self.maybe_all_done(actions);
            }
            return;
        }
        if state.tracker.resubmit(job) {
            state.tracker.clear_ready();
            self.stats.resubmissions += 1;
            let next_attempt = failed_attempt + 1;
            let delay =
                backoff_delay(&self.config.retry, EnsembleJobId::new(wf, job), failed_attempt);
            if delay > 0.0 {
                state.inflight.insert(job, (now + delay, next_attempt, true));
                self.stats.deferred_retries += 1;
            } else {
                state.inflight.insert(job, (dd, next_attempt, false));
                self.stats.dispatches += 1;
                actions.push(Action::Dispatch(DispatchMsg::new(
                    EnsembleJobId::new(wf, job),
                    next_attempt,
                )));
            }
        }
    }

    /// The old O(total in-flight) scan: visit every in-flight job of every
    /// workflow, collect the expired/due ones, process in deterministic
    /// (deadline, workflow, job, attempt, deferred) order — the real
    /// engine's heap-pop order over current entries.
    fn check_timeouts(&mut self, now: f64) -> Vec<Action> {
        let mut expired: Vec<(f64, usize, JobId, u32, bool)> = Vec::new();
        for (wfi, state) in self.workflows.iter().enumerate() {
            for (&job, &(deadline, attempt, deferred)) in &state.inflight {
                if deadline <= now {
                    expired.push((deadline, wfi, job, attempt, deferred));
                }
            }
        }
        expired.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2 .0.cmp(&b.2 .0))
                .then_with(|| a.3.cmp(&b.3))
                .then_with(|| a.4.cmp(&b.4))
        });
        let mut actions = Vec::new();
        for (_, wfi, job, attempt, deferred) in expired {
            let wf = WorkflowId::from_index(wfi);
            if deferred {
                // A backoff-deferred retry came due: dispatch it.
                let dd = self.dispatch_deadline(now);
                let state = &mut self.workflows[wfi];
                state.inflight.insert(job, (dd, attempt, false));
                self.stats.dispatches += 1;
                actions
                    .push(Action::Dispatch(DispatchMsg::new(EnsembleJobId::new(wf, job), attempt)));
            } else {
                self.attempt_failed(wf, job, attempt, now, &mut actions);
            }
        }
        actions
    }

    /// Earliest finite deadline — the old flat-scan `next_deadline`.
    fn next_deadline(&self) -> Option<f64> {
        self.workflows
            .iter()
            .flat_map(|w| w.inflight.values())
            .map(|&(deadline, _, _)| deadline)
            .filter(|d| d.is_finite())
            .min_by(|a, b| a.total_cmp(b))
    }

    fn all_settled(&self) -> bool {
        !self.workflows.is_empty() && self.workflows.iter().all(|w| w.done)
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn maybe_all_done(&mut self, actions: &mut Vec<Action>) {
        if self.all_settled() && !self.terminal_emitted {
            self.terminal_emitted = true;
            actions.push(if self.stats.workflows_abandoned == 0 {
                Action::AllCompleted
            } else {
                Action::AllSettled
            });
        }
    }
}

/// Faithful copy of the engine's deterministic jitter hash.
fn jitter_unit(seed: u64, job: EnsembleJobId, attempt: u32) -> f64 {
    let key = ((job.workflow.index() as u64) << 40)
        ^ ((job.job.index() as u64) << 8)
        ^ u64::from(attempt);
    let mut z = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn backoff_delay(r: &RetryPolicy, job: EnsembleJobId, failed_attempt: u32) -> f64 {
    if r.backoff_base_secs <= 0.0 {
        return 0.0;
    }
    let exp = failed_attempt.saturating_sub(1).min(63);
    let mut delay = r.backoff_base_secs * r.backoff_factor.powi(exp as i32);
    if delay > r.backoff_max_secs {
        delay = r.backoff_max_secs;
    }
    if r.jitter_frac > 0.0 {
        delay *= 1.0 - r.jitter_frac * jitter_unit(r.seed, job, failed_attempt);
    }
    delay
}

// ---------------------------------------------------------------------------
// Randomized driver.
// ---------------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn workflow_strategy() -> impl Strategy<Value = Arc<Workflow>> {
    (1usize..4, 1usize..6, 0.05f64..0.8, 0.1f64..5.0, any::<u64>()).prop_map(
        |(layers, width, edge_probability, mean_cpu_seconds, seed)| {
            Arc::new(random_layered(&RandomDagConfig {
                layers,
                width,
                edge_probability,
                mean_cpu_seconds,
                seed,
            }))
        },
    )
}

fn config_strategy() -> impl Strategy<Value = EngineConfig> {
    (
        (
            1.0f64..20.0,                                           // default timeout
            prop_oneof![Just(None), (1.0f64..10.0).prop_map(Some)], // checkout timeout
            prop_oneof![Just(None), (1u32..5).prop_map(Some)],      // retry cap
        ),
        (
            prop_oneof![Just(0.0f64), 0.1f64..2.0], // backoff base
            1.0f64..3.0,                            // backoff factor
            prop_oneof![Just(0.0f64), 0.1f64..0.9], // jitter fraction
            any::<u64>(),                           // jitter seed
            // Half the cases run the binary heap, half the hierarchical
            // wheel — every step-equality assertion below then doubles
            // as a heap-vs-wheel differential against the reference.
            prop_oneof![Just(TimerBackend::Heap), Just(TimerBackend::Wheel)],
        ),
    )
        .prop_map(|((timeout, checkout, cap), (base, factor, jitter, seed, backend))| {
            EngineConfig {
                default_timeout_secs: timeout,
                checkout_timeout_secs: checkout,
                retry: RetryPolicy {
                    max_attempts: cap,
                    backoff_base_secs: base,
                    backoff_factor: factor,
                    backoff_max_secs: 8.0,
                    jitter_frac: jitter,
                    seed,
                },
                timer_backend: backend,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drive both engines through the same randomized interleaving of
    /// submissions, acks (fresh, stale-attempt and duplicate) and timeout
    /// scans — under randomized retry budgets, backoff schedules and
    /// checkout timeouts: every step must produce identical actions and
    /// statistics.
    #[test]
    fn heap_engine_matches_scan_reference(
        wfs in prop::collection::vec(workflow_strategy(), 1..4),
        config in config_strategy(),
        seed in any::<u64>(),
    ) {
        let timeout = config.default_timeout_secs;
        let mut rng = seed;
        let mut real = config.build();
        let mut reference = ReferenceEngine::new(config);
        let mut now = 0.0f64;
        // Dispatches published but not yet consumed by a Completed/Failed
        // delivery (may include superseded attempts — that is the race).
        let mut outstanding: Vec<DispatchMsg> = Vec::new();
        // Dispatches whose Completed was already delivered, replayed to
        // exercise the duplicate-completion path.
        let mut finished: Vec<DispatchMsg> = Vec::new();
        let mut submitted = 0usize;
        let mut steps = 0usize;

        macro_rules! check_step {
            ($real_actions:expr, $ref_actions:expr) => {{
                let real_actions: Vec<Action> = $real_actions;
                let ref_actions: Vec<Action> = $ref_actions;
                prop_assert_eq!(&real_actions, &ref_actions);
                prop_assert_eq!(real.stats(), reference.stats());
                prop_assert_eq!(real.next_deadline(), reference.next_deadline());
                for a in &real_actions {
                    if let Action::Dispatch(d) = a {
                        outstanding.push(*d);
                    }
                }
            }};
        }

        loop {
            steps += 1;
            prop_assert!(
                steps < 50_000,
                "driver failed to converge: now={now} submitted={submitted} outstanding={} stats={:?} config={:?}",
                outstanding.len(),
                real.stats(),
                config
            );
            if submitted == wfs.len() && real.all_settled() {
                break;
            }
            now += (splitmix64(&mut rng) % 1000) as f64 / 1000.0 * timeout * 0.2;
            let choice = splitmix64(&mut rng) % 100;
            if submitted < wfs.len() && (choice < 15 || outstanding.is_empty()) {
                let wf = Arc::clone(&wfs[submitted]);
                submitted += 1;
                let (id_a, actions_a) = submit_step(&mut real, Arc::clone(&wf), now);
                let (id_b, actions_b) = reference.submit_workflow(wf, now);
                prop_assert_eq!(id_a, id_b);
                check_step!(actions_a, actions_b);
            } else if outstanding.is_empty() {
                // Everything submitted and in some queued, deferred or
                // terminal state; only the clock can make progress.
                now += timeout.max(8.0);
                check_step!(scan_step(&mut real, now), reference.check_timeouts(now));
            } else {
                let pick = (splitmix64(&mut rng) as usize) % outstanding.len();
                match choice {
                    15..=39 => {
                        // Running ack; sometimes with a stale attempt.
                        let d = outstanding[pick];
                        let attempt = if choice < 20 && d.attempt > 1 {
                            d.attempt - 1
                        } else {
                            d.attempt
                        };
                        let ack = AckMsg::new(d.job, (choice % 4) as u32, AckKind::Running, attempt);
                        check_step!(ack_step(&mut real, ack, now), reference.on_ack(ack, now));
                    }
                    40..=79 => {
                        let d = outstanding.swap_remove(pick);
                        finished.push(d);
                        let ack = AckMsg::new(d.job, 0, AckKind::Completed, d.attempt);
                        check_step!(ack_step(&mut real, ack, now), reference.on_ack(ack, now));
                    }
                    80..=87 => {
                        let d = outstanding.swap_remove(pick);
                        let ack = AckMsg::new(d.job, 0, AckKind::Failed, d.attempt);
                        check_step!(ack_step(&mut real, ack, now), reference.on_ack(ack, now));
                    }
                    88..=93 if !finished.is_empty() => {
                        // Duplicate completion (timeout-race replay).
                        let d = finished[(splitmix64(&mut rng) as usize) % finished.len()];
                        let ack = AckMsg::new(d.job, 1, AckKind::Completed, d.attempt);
                        check_step!(ack_step(&mut real, ack, now), reference.on_ack(ack, now));
                    }
                    _ => {
                        // Jump past some deadlines and scan.
                        now += (splitmix64(&mut rng) % 3) as f64 * timeout;
                        check_step!(scan_step(&mut real, now), reference.check_timeouts(now));
                    }
                }
            }
        }

        prop_assert!(reference.all_settled());
        prop_assert_eq!(real.stats(), reference.stats());
        let stats = real.stats();
        let total: u64 = wfs.iter().map(|w| w.job_count() as u64).sum();
        // Every job reached exactly one terminal state.
        prop_assert_eq!(stats.jobs_completed + stats.jobs_abandoned, total);
        if config.retry.max_attempts.is_none() {
            prop_assert_eq!(stats.dead_lettered, 0);
            prop_assert_eq!(stats.workflows_abandoned, 0);
        }
    }

    /// Journal-replay recovery: drive an engine while journaling its
    /// inputs, recover a twin from the journal mid-run, then feed both the
    /// identical event suffix — the twin must emit the same actions, stats
    /// and deadlines as the engine that never crashed.
    #[test]
    fn recovered_engine_is_observationally_identical(
        wfs in prop::collection::vec(workflow_strategy(), 1..3),
        config in config_strategy(),
        seed in any::<u64>(),
        crash_after in 1usize..40,
    ) {
        let timeout = config.default_timeout_secs;
        let mut rng = seed;
        let mut real = config.build();
        let registry = Registry::new();
        for (i, wf) in wfs.iter().enumerate() {
            registry.insert(WorkflowId::from_index(i), Arc::clone(wf));
        }
        let mut journal: Vec<JournalRecord> = Vec::new();
        let mut now = 0.0f64;
        let mut outstanding: Vec<DispatchMsg> = Vec::new();
        let mut submitted = 0usize;
        let mut steps = 0usize;
        // Twin appears at the crash point; until then only `real` runs.
        let mut twin: Option<EnsembleEngine> = None;

        loop {
            steps += 1;
            prop_assert!(steps < 50_000, "driver failed to converge");
            if submitted == wfs.len() && real.all_settled() {
                break;
            }
            if twin.is_none() && steps > crash_after {
                // Crash: rebuild from the journal alone.
                let rec = recover(&journal, &registry, config).unwrap();
                let mut t = rec.engine;
                prop_assert!(rec.resume_at <= now);
                prop_assert_eq!(t.stats(), real.stats());
                prop_assert_eq!(t.next_deadline(), real.next_deadline());
                // The republish set is exactly what the live engine holds
                // in flight (minus deferred retries).
                let mut live_inflight = Vec::new();
                real.inflight_dispatches(&mut live_inflight);
                prop_assert_eq!(&rec.redispatch, &live_inflight);
                twin = Some(t);
            }
            now += (splitmix64(&mut rng) % 1000) as f64 / 1000.0 * timeout * 0.2;
            let choice = splitmix64(&mut rng) % 100;
            if submitted < wfs.len() && (choice < 20 || outstanding.is_empty()) {
                let wf = Arc::clone(&wfs[submitted]);
                submitted += 1;
                journal.push(JournalRecord::Submit {
                    workflow: submitted as u32 - 1,
                    at: now,
                    shard: 0,
                });
                let (_, actions) = submit_step(&mut real, Arc::clone(&wf), now);
                if let Some(t) = twin.as_mut() {
                    let (_, tw) = submit_step(t, wf, now);
                    prop_assert_eq!(&actions, &tw);
                }
                for a in &actions {
                    if let Action::Dispatch(d) = a {
                        outstanding.push(*d);
                    }
                }
            } else if outstanding.is_empty() {
                now += timeout.max(8.0);
                journal.push(JournalRecord::Scan { at: now });
                let actions = scan_step(&mut real, now);
                if let Some(t) = twin.as_mut() {
                    prop_assert_eq!(&actions, &scan_step(t, now));
                }
                for a in &actions {
                    if let Action::Dispatch(d) = a {
                        outstanding.push(*d);
                    }
                }
            } else {
                let pick = (splitmix64(&mut rng) as usize) % outstanding.len();
                let actions = if choice < 70 {
                    let terminal = choice < 55;
                    let d = if terminal { outstanding.swap_remove(pick) } else { outstanding[pick] };
                    let kind = if terminal {
                        if choice < 45 { AckKind::Completed } else { AckKind::Failed }
                    } else {
                        AckKind::Running
                    };
                    let ack = AckMsg::new(d.job, 0, kind, d.attempt);
                    journal.push(JournalRecord::Ack { ack, at: now });
                    let actions = ack_step(&mut real, ack, now);
                    if let Some(t) = twin.as_mut() {
                        prop_assert_eq!(&actions, &ack_step(t, ack, now));
                    }
                    actions
                } else {
                    now += (splitmix64(&mut rng) % 3) as f64 * timeout;
                    journal.push(JournalRecord::Scan { at: now });
                    let actions = scan_step(&mut real, now);
                    if let Some(t) = twin.as_mut() {
                        prop_assert_eq!(&actions, &scan_step(t, now));
                    }
                    actions
                };
                for a in &actions {
                    if let Action::Dispatch(d) = a {
                        outstanding.push(*d);
                    }
                }
            }
            if let Some(t) = twin.as_mut() {
                prop_assert_eq!(t.stats(), real.stats());
                prop_assert_eq!(t.next_deadline(), real.next_deadline());
            }
        }

        // Even if the run settled before the crash point, recovery of the
        // final journal must reproduce the final state.
        let rec = recover(&journal, &registry, config).unwrap();
        prop_assert_eq!(rec.engine.stats(), real.stats());
    }
}
