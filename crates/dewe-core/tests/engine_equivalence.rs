//! The deadline-heap engine must be observationally identical to the
//! original implementation that kept per-workflow `HashMap` in-flight
//! tables and scanned every running job on each timeout check.
//!
//! A reference copy of that implementation lives in this file. Both
//! engines are driven through randomized interleavings of submissions,
//! Running/Completed/Failed acknowledgments (including stale-attempt
//! re-acks and duplicate completions from timeout races) and timeout
//! scans, asserting after every step that they emit the same action
//! sequence, the same statistics and the same next deadline.

use std::collections::HashMap;
use std::sync::Arc;

use dewe_core::{AckKind, AckMsg, Action, DispatchMsg, EngineStats, EnsembleEngine};
use dewe_dag::{DependencyTracker, EnsembleJobId, JobId, JobState, Workflow, WorkflowId};
use dewe_montage::{random_layered, RandomDagConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Reference implementation: the pre-heap engine, scan-everything flavor.
// ---------------------------------------------------------------------------

struct RefWorkflow {
    workflow: Arc<Workflow>,
    tracker: DependencyTracker,
    submitted_at: f64,
    /// (deadline, attempt) per in-flight job — the old sparse table.
    inflight: HashMap<JobId, (f64, u32)>,
    done: bool,
}

struct ReferenceEngine {
    workflows: Vec<RefWorkflow>,
    default_timeout_secs: f64,
    stats: EngineStats,
    all_completed_emitted: bool,
}

impl ReferenceEngine {
    fn new(default_timeout_secs: f64) -> Self {
        Self {
            workflows: Vec::new(),
            default_timeout_secs,
            stats: EngineStats::default(),
            all_completed_emitted: false,
        }
    }

    fn submit_workflow(&mut self, workflow: Arc<Workflow>, now: f64) -> (WorkflowId, Vec<Action>) {
        let id = WorkflowId::from_index(self.workflows.len());
        let mut state = RefWorkflow {
            tracker: DependencyTracker::new(&workflow),
            workflow,
            submitted_at: now,
            inflight: HashMap::new(),
            done: false,
        };
        let mut actions = Vec::new();
        for job in state.tracker.take_ready() {
            state.inflight.insert(job, (f64::INFINITY, 1));
            self.stats.dispatches += 1;
            actions.push(Action::Dispatch(DispatchMsg {
                job: EnsembleJobId::new(id, job),
                attempt: 1,
            }));
        }
        self.stats.workflows_submitted += 1;
        self.all_completed_emitted = false;
        if state.tracker.is_complete() {
            state.done = true;
            self.stats.workflows_completed += 1;
            actions.push(Action::WorkflowCompleted { workflow: id, makespan_secs: 0.0 });
            self.workflows.push(state);
            self.maybe_all_completed(&mut actions);
        } else {
            self.workflows.push(state);
        }
        (id, actions)
    }

    fn on_ack(&mut self, ack: AckMsg, now: f64) -> Vec<Action> {
        let wf = ack.job.workflow;
        let job = ack.job.job;
        let mut actions = Vec::new();
        match ack.kind {
            AckKind::Running => {
                let state = &mut self.workflows[wf.index()];
                let timeout = state.workflow.job(job).effective_timeout(self.default_timeout_secs);
                if let Some((deadline, attempt)) = state.inflight.get_mut(&job) {
                    if *attempt == ack.attempt {
                        *deadline = now + timeout;
                    }
                }
                state.tracker.mark_running(job);
            }
            AckKind::Completed => {
                let state = &mut self.workflows[wf.index()];
                if state.tracker.state(job) == JobState::Completed {
                    self.stats.duplicate_completions += 1;
                    return actions;
                }
                state.inflight.remove(&job);
                let workflow = Arc::clone(&state.workflow);
                state.tracker.complete(&workflow, job);
                self.stats.jobs_completed += 1;
                for next in state.tracker.take_ready() {
                    state.inflight.insert(next, (f64::INFINITY, 1));
                    self.stats.dispatches += 1;
                    actions.push(Action::Dispatch(DispatchMsg {
                        job: EnsembleJobId::new(wf, next),
                        attempt: 1,
                    }));
                }
                if state.tracker.is_complete() && !state.done {
                    state.done = true;
                    self.stats.workflows_completed += 1;
                    actions.push(Action::WorkflowCompleted {
                        workflow: wf,
                        makespan_secs: now - state.submitted_at,
                    });
                    self.maybe_all_completed(&mut actions);
                }
            }
            AckKind::Failed => {
                let state = &mut self.workflows[wf.index()];
                if state.tracker.state(job) != JobState::Completed && state.tracker.resubmit(job) {
                    state.tracker.clear_ready();
                    let attempt = ack.attempt + 1;
                    self.stats.resubmissions += 1;
                    state.inflight.insert(job, (f64::INFINITY, attempt));
                    self.stats.dispatches += 1;
                    actions.push(Action::Dispatch(DispatchMsg {
                        job: EnsembleJobId::new(wf, job),
                        attempt,
                    }));
                }
            }
        }
        actions
    }

    /// The old O(total in-flight) scan: visit every running job of every
    /// workflow, collect the expired ones, resubmit in deterministic
    /// (deadline, workflow, job, attempt) order.
    fn check_timeouts(&mut self, now: f64) -> Vec<Action> {
        let mut expired: Vec<(f64, usize, JobId, u32)> = Vec::new();
        for (wfi, state) in self.workflows.iter().enumerate() {
            for (&job, &(deadline, attempt)) in &state.inflight {
                if deadline <= now {
                    expired.push((deadline, wfi, job, attempt));
                }
            }
        }
        expired.sort_by(|a, b| {
            a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)).then_with(|| a.2 .0.cmp(&b.2 .0))
        });
        let mut actions = Vec::new();
        for (_, wfi, job, attempt) in expired {
            let state = &mut self.workflows[wfi];
            if state.tracker.resubmit(job) {
                state.tracker.clear_ready();
                self.stats.resubmissions += 1;
                state.inflight.insert(job, (f64::INFINITY, attempt + 1));
                self.stats.dispatches += 1;
                actions.push(Action::Dispatch(DispatchMsg {
                    job: EnsembleJobId::new(WorkflowId::from_index(wfi), job),
                    attempt: attempt + 1,
                }));
            } else {
                state.inflight.remove(&job);
            }
        }
        actions
    }

    /// Earliest finite deadline — the old flat-scan `next_deadline`.
    fn next_deadline(&self) -> Option<f64> {
        self.workflows
            .iter()
            .flat_map(|w| w.inflight.values())
            .map(|&(deadline, _)| deadline)
            .filter(|d| d.is_finite())
            .min_by(|a, b| a.total_cmp(b))
    }

    fn all_complete(&self) -> bool {
        !self.workflows.is_empty() && self.workflows.iter().all(|w| w.done)
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn maybe_all_completed(&mut self, actions: &mut Vec<Action>) {
        if self.all_complete() && !self.all_completed_emitted {
            self.all_completed_emitted = true;
            actions.push(Action::AllCompleted);
        }
    }
}

// ---------------------------------------------------------------------------
// Randomized driver.
// ---------------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn workflow_strategy() -> impl Strategy<Value = Arc<Workflow>> {
    (1usize..4, 1usize..6, 0.05f64..0.8, 0.1f64..5.0, any::<u64>()).prop_map(
        |(layers, width, edge_probability, mean_cpu_seconds, seed)| {
            Arc::new(random_layered(&RandomDagConfig {
                layers,
                width,
                edge_probability,
                mean_cpu_seconds,
                seed,
            }))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drive both engines through the same randomized interleaving of
    /// submissions, acks (fresh, stale-attempt and duplicate) and timeout
    /// scans: every step must produce identical actions and statistics.
    #[test]
    fn heap_engine_matches_scan_reference(
        wfs in prop::collection::vec(workflow_strategy(), 1..4),
        seed in any::<u64>(),
        timeout in 1.0f64..20.0,
    ) {
        let mut rng = seed;
        let mut real = EnsembleEngine::with_default_timeout(timeout);
        let mut reference = ReferenceEngine::new(timeout);
        let mut now = 0.0f64;
        // Dispatches published but not yet consumed by a Completed/Failed
        // delivery (may include superseded attempts — that is the race).
        let mut outstanding: Vec<DispatchMsg> = Vec::new();
        // Dispatches whose Completed was already delivered, replayed to
        // exercise the duplicate-completion path.
        let mut finished: Vec<DispatchMsg> = Vec::new();
        let mut submitted = 0usize;
        let mut steps = 0usize;

        macro_rules! check_step {
            ($real_actions:expr, $ref_actions:expr) => {{
                let real_actions: Vec<Action> = $real_actions;
                let ref_actions: Vec<Action> = $ref_actions;
                prop_assert_eq!(&real_actions, &ref_actions);
                prop_assert_eq!(real.stats(), reference.stats());
                prop_assert_eq!(real.next_deadline(), reference.next_deadline());
                for a in &real_actions {
                    if let Action::Dispatch(d) = a {
                        outstanding.push(*d);
                    }
                }
            }};
        }

        loop {
            steps += 1;
            prop_assert!(steps < 50_000, "driver failed to converge");
            if submitted == wfs.len() && real.all_complete() {
                break;
            }
            now += (splitmix64(&mut rng) % 1000) as f64 / 1000.0 * timeout * 0.2;
            let choice = splitmix64(&mut rng) % 100;
            if submitted < wfs.len() && (choice < 15 || outstanding.is_empty()) {
                let wf = Arc::clone(&wfs[submitted]);
                submitted += 1;
                let (id_a, actions_a) = real.submit_workflow(Arc::clone(&wf), now);
                let (id_b, actions_b) = reference.submit_workflow(wf, now);
                prop_assert_eq!(id_a, id_b);
                check_step!(actions_a, actions_b);
            } else if outstanding.is_empty() {
                // Everything submitted and in some terminal/queued state;
                // only the clock can make progress.
                now += timeout;
                check_step!(real.check_timeouts(now), reference.check_timeouts(now));
            } else {
                let pick = (splitmix64(&mut rng) as usize) % outstanding.len();
                match choice {
                    15..=39 => {
                        // Running ack; sometimes with a stale attempt.
                        let d = outstanding[pick];
                        let attempt = if choice < 20 && d.attempt > 1 {
                            d.attempt - 1
                        } else {
                            d.attempt
                        };
                        let ack = AckMsg {
                            job: d.job,
                            worker: (choice % 4) as u32,
                            kind: AckKind::Running,
                            attempt,
                        };
                        check_step!(real.on_ack(ack, now), reference.on_ack(ack, now));
                    }
                    40..=79 => {
                        let d = outstanding.swap_remove(pick);
                        finished.push(d);
                        let ack = AckMsg {
                            job: d.job,
                            worker: 0,
                            kind: AckKind::Completed,
                            attempt: d.attempt,
                        };
                        check_step!(real.on_ack(ack, now), reference.on_ack(ack, now));
                    }
                    80..=87 => {
                        let d = outstanding.swap_remove(pick);
                        let ack = AckMsg {
                            job: d.job,
                            worker: 0,
                            kind: AckKind::Failed,
                            attempt: d.attempt,
                        };
                        check_step!(real.on_ack(ack, now), reference.on_ack(ack, now));
                    }
                    88..=93 if !finished.is_empty() => {
                        // Duplicate completion (timeout-race replay).
                        let d = finished[(splitmix64(&mut rng) as usize) % finished.len()];
                        let ack = AckMsg {
                            job: d.job,
                            worker: 1,
                            kind: AckKind::Completed,
                            attempt: d.attempt,
                        };
                        check_step!(real.on_ack(ack, now), reference.on_ack(ack, now));
                    }
                    _ => {
                        // Jump past some deadlines and scan.
                        now += (splitmix64(&mut rng) % 3) as f64 * timeout;
                        check_step!(real.check_timeouts(now), reference.check_timeouts(now));
                    }
                }
            }
        }

        prop_assert!(reference.all_complete());
        prop_assert_eq!(real.stats(), reference.stats());
        let total: u64 = wfs.iter().map(|w| w.job_count() as u64).sum();
        prop_assert_eq!(real.stats().jobs_completed, total);
    }
}
