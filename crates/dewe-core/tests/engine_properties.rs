//! Property-based tests for the full DEWE v2 simulated runtime: random
//! workflows, random cluster shapes, random faults — the ensemble always
//! completes, exactly once per job, deterministically.

use std::sync::Arc;

use dewe_core::sim::{run_ensemble, NodeFault, SimRunConfig, SubmissionPlan};
use dewe_core::{AckKind, AckMsg, Action, DispatchMsg, EngineConfig, RetryPolicy};
use dewe_dag::{Workflow, WorkflowBuilder};
use dewe_montage::{random_layered, RandomDagConfig};
use dewe_simcloud::{ClusterConfig, SharedFsKind, StorageConfig, C3_8XLARGE};
use proptest::prelude::*;

fn workflow_strategy() -> impl Strategy<Value = Arc<Workflow>> {
    (1usize..5, 1usize..8, 0.05f64..0.8, 0.1f64..5.0, any::<u64>()).prop_map(
        |(layers, width, edge_probability, mean_cpu_seconds, seed)| {
            Arc::new(random_layered(&RandomDagConfig {
                layers,
                width,
                edge_probability,
                mean_cpu_seconds,
                seed,
            }))
        },
    )
}

fn cluster(nodes: usize) -> ClusterConfig {
    ClusterConfig {
        instance: C3_8XLARGE,
        nodes,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any ensemble of random DAGs on any small cluster completes with
    /// exactly one execution per job.
    #[test]
    fn random_ensembles_complete(
        wfs in prop::collection::vec(workflow_strategy(), 1..5),
        nodes in 1usize..4,
        interval in 0.0f64..10.0,
    ) {
        let total: u64 = wfs.iter().map(|w| w.job_count() as u64).sum();
        let mut cfg = SimRunConfig::new(cluster(nodes));
        cfg.per_job_overhead_secs = 0.0;
        cfg.submission = if interval == 0.0 {
            SubmissionPlan::Batch
        } else {
            SubmissionPlan::Interval(interval)
        };
        let report = run_ensemble(&wfs, &cfg);
        prop_assert!(report.completed);
        prop_assert_eq!(report.engine.jobs_completed, total);
        prop_assert_eq!(report.engine.resubmissions, 0);
        prop_assert_eq!(report.engine.duplicate_completions, 0);
        // Makespan bounds: at least the critical path of the longest
        // workflow; at most total serial time plus submission staggering.
        let serial: f64 = wfs.iter().map(|w| w.total_cpu_seconds()).sum();
        let stagger = interval * wfs.len() as f64;
        prop_assert!(report.makespan_secs <= serial + stagger + 1.0,
            "makespan {} > serial bound {}", report.makespan_secs, serial + stagger);
    }

    /// Faults (kill + restart) never prevent completion and never lose or
    /// duplicate effective work.
    #[test]
    fn faulty_ensembles_still_complete(
        wf in workflow_strategy(),
        kill_frac in 0.05f64..0.9,
        outage in 0.5f64..10.0,
    ) {
        // Two nodes, kill node 1 somewhere inside the fault-free makespan.
        let mut cfg = SimRunConfig::new(cluster(2));
        cfg.per_job_overhead_secs = 0.0;
        let clean = run_ensemble(&[Arc::clone(&wf)], &cfg);
        prop_assert!(clean.completed);

        let mut cfg = SimRunConfig::new(cluster(2));
        cfg.per_job_overhead_secs = 0.0;
        cfg.default_timeout_secs = 5.0;
        cfg.timeout_scan_secs = 0.5;
        let kill_at = (clean.makespan_secs * kill_frac).max(0.01);
        cfg.faults = vec![NodeFault {
            node: 1,
            kill_at_secs: kill_at,
            restart_at_secs: Some(kill_at + outage),
        }];
        let report = run_ensemble(&[Arc::clone(&wf)], &cfg);
        prop_assert!(report.completed, "fault run starved");
        prop_assert_eq!(report.engine.jobs_completed, wf.job_count() as u64);
        // Makespan can only grow under faults (same config otherwise).
        prop_assert!(report.makespan_secs + 1e-6 >= clean.makespan_secs * 0.999,
            "faults should not speed things up: {} vs {}",
            report.makespan_secs, clean.makespan_secs);
    }

    /// Determinism: the full runtime is a pure function of its inputs.
    #[test]
    fn runtime_is_deterministic(
        wfs in prop::collection::vec(workflow_strategy(), 1..4),
        nodes in 1usize..4,
    ) {
        let mut cfg = SimRunConfig::new(cluster(nodes));
        cfg.per_job_overhead_secs = 0.05;
        let a = run_ensemble(&wfs, &cfg);
        let b = run_ensemble(&wfs, &cfg);
        prop_assert_eq!(a.makespan_secs, b.makespan_secs);
        prop_assert_eq!(a.workflow_makespans, b.workflow_makespans);
        prop_assert_eq!(a.total_bytes_read, b.total_bytes_read);
        prop_assert_eq!(a.total_bytes_written, b.total_bytes_written);
        prop_assert_eq!(a.engine.dispatches, b.engine.dispatches);
    }

    /// Generation-index safety under churn: a random storm of acks —
    /// completions, failures, duplicate and *stale* acks replayed from
    /// superseded attempts — interleaved with timeout resubmissions and
    /// dead-lettering must never corrupt the engine's in-flight slab.
    /// The slab is a struct-of-arrays keyed by (workflow, job) with the
    /// attempt number as the generation check, so a stale ack landing on
    /// a recycled slot is the exact aliasing hazard this hunts.
    #[test]
    fn generation_churn_never_corrupts_inflight_state(
        wfs in prop::collection::vec(workflow_strategy(), 1..4),
        seed in any::<u64>(),
        storm_steps in 20usize..120,
    ) {
        let mut engine = EngineConfig::default()
            .timeout(10.0)
            .checkout_timeout(5.0)
            .retry(RetryPolicy {
                max_attempts: Some(3),
                backoff_base_secs: 1.0,
                ..RetryPolicy::default()
            })
            .build();

        let mut rng = seed | 1;
        let mut next = move || {
            // xorshift64: cheap, deterministic, seeded by proptest.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };

        let mut actions = Vec::new();
        let mut outstanding: Vec<DispatchMsg> = Vec::new();
        let mut history: Vec<DispatchMsg> = Vec::new();
        let mut now = 0.0;
        for wf in &wfs {
            engine.submit_workflow(Arc::clone(wf), now, &mut actions);
        }
        let drain = |actions: &mut Vec<Action>,
                         outstanding: &mut Vec<DispatchMsg>,
                         history: &mut Vec<DispatchMsg>| {
            for a in actions.drain(..) {
                if let Action::Dispatch(d) = a {
                    outstanding.push(d);
                    history.push(d);
                }
            }
        };
        drain(&mut actions, &mut outstanding, &mut history);

        // Storm phase: random ack/fail/stale-replay/timeout events.
        for _ in 0..storm_steps {
            if engine.all_settled() {
                break;
            }
            now += (next() % 100) as f64 / 50.0;
            match next() % 8 {
                0..=2 if !outstanding.is_empty() => {
                    let d = outstanding.swap_remove(next() as usize % outstanding.len());
                    let kind =
                        if next() % 4 == 0 { AckKind::Failed } else { AckKind::Completed };
                    engine.on_ack(
                        AckMsg::new(d.job, 0, kind, d.attempt),
                        now,
                        &mut actions,
                    );
                }
                3 if !outstanding.is_empty() => {
                    // Checkout without completion: arms the job timeout.
                    let d = outstanding[next() as usize % outstanding.len()];
                    engine.on_ack(
                        AckMsg::new(d.job, 1, AckKind::Running, d.attempt),
                        now,
                        &mut actions,
                    );
                }
                4..=5 if !history.is_empty() => {
                    // Stale/duplicate replay: an attempt that may have been
                    // superseded, completed, or dead-lettered long ago.
                    let d = history[next() as usize % history.len()];
                    let kind = match next() % 3 {
                        0 => AckKind::Running,
                        1 => AckKind::Completed,
                        _ => AckKind::Failed,
                    };
                    engine.on_ack(
                        AckMsg::new(d.job, 2, kind, d.attempt),
                        now,
                        &mut actions,
                    );
                }
                _ => {
                    if let Some(due) = engine.next_deadline() {
                        now = now.max(due + 1e-9);
                    }
                    engine.check_timeouts(now, &mut actions);
                }
            }
            drain(&mut actions, &mut outstanding, &mut history);
        }

        // Cleanup phase: drive the survivors to settlement. Every path is
        // bounded — attempts cap at 3, so each job either completes here
        // or dead-letters through the timeout machinery.
        let mut guard = 0;
        while !engine.all_settled() {
            guard += 1;
            prop_assert!(guard < 10_000, "engine failed to settle under churn");
            if let Some(due) = engine.next_deadline() {
                now = now.max(due + 1e-9);
                engine.check_timeouts(now, &mut actions);
            } else {
                let Some(d) = outstanding.pop() else {
                    prop_assert!(false, "no deadline and nothing outstanding, yet unsettled");
                    unreachable!()
                };
                engine.on_ack(
                    AckMsg::new(d.job, 0, AckKind::Completed, d.attempt),
                    now,
                    &mut actions,
                );
            }
            drain(&mut actions, &mut outstanding, &mut history);
        }

        // Settled: the slab must be fully drained — a live or phantom
        // entry here means a stale generation survived the churn.
        prop_assert_eq!(engine.next_deadline(), None);
        let mut inflight = Vec::new();
        engine.inflight_dispatches(&mut inflight);
        prop_assert!(inflight.is_empty(), "settled engine still reports in-flight attempts");
        let stats = engine.stats();
        let total: u64 = wfs.iter().map(|w| w.job_count() as u64).sum();
        prop_assert_eq!(stats.jobs_completed + stats.jobs_abandoned, total);
        prop_assert_eq!(stats.workflows_completed + stats.workflows_abandoned, wfs.len());
    }

    /// More nodes never hurt: makespan is non-increasing in cluster size
    /// for CPU-bound ensembles (no I/O efficiency penalty on DistFs at
    /// these scales because the workloads are compute-only).
    #[test]
    fn monotone_in_cluster_size(
        width in 8usize..40,
        cpu in 0.5f64..5.0,
    ) {
        // Compute-only fan (no files), so shared-FS scaling effects are out
        // of the picture.
        let mut b = WorkflowBuilder::new("fan");
        for i in 0..width * 4 {
            b.job(format!("j{i}"), "t", cpu).build();
        }
        let wf = Arc::new(b.finish().unwrap());
        let mut prev = f64::INFINITY;
        for nodes in 1..=3 {
            let mut cfg = SimRunConfig::new(cluster(nodes));
            cfg.per_job_overhead_secs = 0.0;
            let r = run_ensemble(&[Arc::clone(&wf)], &cfg);
            prop_assert!(r.completed);
            prop_assert!(r.makespan_secs <= prev + 1e-6,
                "{nodes} nodes slower than {}: {} > {prev}", nodes - 1, r.makespan_secs);
            prev = r.makespan_secs;
        }
    }
}
