//! Master failover: kill the master daemon mid-ensemble, restart a
//! replacement from the write-ahead journal, and verify the ensemble
//! still completes with nothing worse than duplicate-completion noise.
//!
//! The paper's master is a single point of failure (its DAG state is in
//! memory only); this test exercises the journal/recovery path that
//! removes it. Workers and the message bus survive the "crash" — only
//! the master's in-memory engine is lost, exactly what a process restart
//! on the master VM looks like.

use std::sync::Arc;
use std::time::Duration;

use dewe_core::realtime::{
    compact_records, read_journal, recover, spawn_master, spawn_worker, submit,
    JournalCommitPolicy, MasterConfig, MasterEvent, MessageBus, Registry, SleepRunner,
    WorkerConfig,
};
use dewe_core::EngineConfig;
use dewe_dag::{Workflow, WorkflowBuilder};

fn chain(name: &str, jobs: usize, cpu: f64) -> Arc<Workflow> {
    let mut b = WorkflowBuilder::new(name);
    let mut prev = None;
    for i in 0..jobs {
        let j = b.job(format!("{name}-j{i}"), "t", cpu).build();
        if let Some(p) = prev {
            b.edge(p, j);
        }
        prev = Some(j);
    }
    Arc::new(b.finish().unwrap())
}

#[test]
fn ensemble_finishes_after_master_failover() {
    let mut journal_path = std::env::temp_dir();
    journal_path.push(format!("dewe-recovery-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let bus = MessageBus::new();
    let registry = Registry::new();
    // Group commit exercises the batched durability path: records
    // buffer across a poll cycle and must still survive the kill
    // (the simulated crash drops the master loop, and the journal's
    // drop flushes the open window — a torn tail would only appear
    // on a hard power loss, which journal_properties covers).
    let mk_config = |recover: bool| {
        MasterConfig::builder()
            .timeout_scan_interval(Duration::from_millis(10))
            .expected_workflows(3)
            .journal_path(journal_path.clone())
            .journal_commit(JournalCommitPolicy::GroupCommit { max_records: 8 })
            .recover(recover)
            .build()
    };

    let master = spawn_master(bus.clone(), registry.clone(), mk_config(false));
    // 20 ms per job: slow enough that the kill lands mid-ensemble with
    // jobs genuinely in flight, fast enough to keep the test snappy.
    let worker = spawn_worker(
        bus.clone(),
        registry.clone(),
        Arc::new(SleepRunner::new(0.02)),
        WorkerConfig {
            worker_id: 0,
            slots: 2,
            pull_timeout: Duration::from_millis(10),
            ..WorkerConfig::default()
        },
    );

    for i in 0..3 {
        submit(&bus, format!("c{i}"), chain(&format!("c{i}"), 4, 1.0));
    }

    // Let the first workflow complete, proving the journal holds real
    // progress (submissions, checkouts, completions) — then crash.
    let ev = master.events.recv_timeout(Duration::from_secs(30)).expect("first completion");
    assert!(matches!(ev, MasterEvent::WorkflowCompleted { .. }), "got {ev:?}");
    master.kill();

    // The journal alone must reconstruct the pre-crash engine.
    let records = read_journal(&journal_path).expect("journal readable");
    let replay = recover(&records, &registry, EngineConfig::default()).expect("journal replays");
    // At least the completion we just observed must be durable. The
    // count is a bound, not an exact value: with two slots the second
    // chain runs concurrently with the first and can complete in the
    // gap between the event arriving and the kill landing. Fewer than
    // all three proves the crash really hit mid-ensemble.
    let pre_crash = replay.engine.stats().workflows_completed;
    assert!((1..3).contains(&pre_crash), "pre-crash progress recovered: {pre_crash}");

    // Failover: a replacement master recovers from the journal and takes
    // over the same bus. In-flight jobs get republished; the worker may
    // run some twice, which the engine counts as duplicate noise.
    let master2 = spawn_master(bus.clone(), registry.clone(), mk_config(true));
    let stats = master2.join();
    worker.stop();
    bus.shutdown();

    assert_eq!(stats.workflows_completed, 3, "ensemble finished after failover");
    assert_eq!(stats.workflows_abandoned, 0);
    assert_eq!(stats.jobs_completed, 12, "every job completed exactly once in engine state");
    assert_eq!(stats.dead_lettered, 0);
    // Failover noise is bounded: at most the jobs that were in flight at
    // the crash can complete twice.
    assert!(stats.duplicate_completions <= 4, "noise bounded: {stats:?}");

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn compacted_journal_still_recovers_the_ensemble() {
    // Same failover shape as above, but with WAL compaction active at an
    // aggressive threshold: by the time the master is killed the journal
    // has been rewritten as a synthetic prefix at least once, and the
    // replacement must recover from that compacted file.
    let mut journal_path = std::env::temp_dir();
    journal_path.push(format!("dewe-recovery-compact-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let bus = MessageBus::new();
    let registry = Registry::new();
    let mk_config = |recover: bool| {
        MasterConfig::builder()
            .timeout_scan_interval(Duration::from_millis(10))
            .expected_workflows(4)
            .journal_path(journal_path.clone())
            .journal_compact_threshold(8)
            .recover(recover)
            .build()
    };

    let master = spawn_master(bus.clone(), registry.clone(), mk_config(false));
    let worker = spawn_worker(
        bus.clone(),
        registry.clone(),
        Arc::new(SleepRunner::new(0.02)),
        WorkerConfig {
            worker_id: 0,
            slots: 2,
            pull_timeout: Duration::from_millis(10),
            ..WorkerConfig::default()
        },
    );

    for i in 0..4 {
        submit(&bus, format!("c{i}"), chain(&format!("c{i}"), 4, 1.0));
    }

    // Let two workflows complete so compaction has material to elide,
    // then crash.
    let mut completions = 0;
    while completions < 2 {
        let ev = master.events.recv_timeout(Duration::from_secs(30)).expect("completion");
        if matches!(ev, MasterEvent::WorkflowCompleted { .. }) {
            completions += 1;
        }
    }
    master.kill();

    // The compacted journal replays to the full pre-crash completion
    // count — and stays lean: 2 completed workflows are at most S + 4
    // effective completions each, plus the live workflows' history.
    let records = read_journal(&journal_path).expect("journal readable");
    let replay =
        recover(&records, &registry, EngineConfig::default()).expect("compacted journal replays");
    assert!(
        replay.engine.stats().workflows_completed >= 2,
        "pre-crash progress survives compaction: {:?}",
        replay.engine.stats()
    );

    let master2 = spawn_master(bus.clone(), registry.clone(), mk_config(true));
    let stats = master2.join();
    worker.stop();
    bus.shutdown();

    assert_eq!(stats.workflows_completed, 4, "ensemble finished after failover");
    assert_eq!(stats.workflows_abandoned, 0);
    assert_eq!(stats.jobs_completed, 16);

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn compaction_racing_group_commit_survives_failover() {
    // The sharpest WAL corner: in-place compaction (`maybe_compact`)
    // running while the writer is in group-commit mode, with the master
    // killed somewhere in between. Compaction reads the file from disk,
    // so any records still buffered in the group-commit window at the
    // rewrite point must be committed first or the synthetic prefix
    // silently loses them — and the kill lands on whichever journal
    // (original or compacted) happens to be on disk. An aggressive
    // threshold plus a window wider than the per-job record burst makes
    // both orderings occur across the run.
    let mut journal_path = std::env::temp_dir();
    journal_path.push(format!("dewe-recovery-compact-gc-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let bus = MessageBus::new();
    let registry = Registry::new();
    let mk_config = |recover: bool| {
        MasterConfig::builder()
            .timeout_scan_interval(Duration::from_millis(10))
            .expected_workflows(4)
            .journal_path(journal_path.clone())
            .journal_commit(JournalCommitPolicy::GroupCommit { max_records: 8 })
            .journal_compact_threshold(8)
            .recover(recover)
            .build()
    };

    let master = spawn_master(bus.clone(), registry.clone(), mk_config(false));
    let worker = spawn_worker(
        bus.clone(),
        registry.clone(),
        Arc::new(SleepRunner::new(0.02)),
        WorkerConfig {
            worker_id: 0,
            slots: 2,
            pull_timeout: Duration::from_millis(10),
            ..WorkerConfig::default()
        },
    );

    for i in 0..4 {
        submit(&bus, format!("c{i}"), chain(&format!("c{i}"), 4, 1.0));
    }

    // Two completed workflows guarantee compaction had material to elide
    // and fired at least once (8 records arrive within the first
    // workflow); then crash with jobs still in flight.
    let mut completions = 0;
    while completions < 2 {
        let ev = master.events.recv_timeout(Duration::from_secs(30)).expect("completion");
        if matches!(ev, MasterEvent::WorkflowCompleted { .. }) {
            completions += 1;
        }
    }
    master.kill();

    // Recovery equivalence: the on-disk journal and its re-compaction
    // must rebuild identical live state. `compact_records` documents the
    // contract — tracker, in-flight attempts, and the
    // submitted/completed/abandoned/jobs_completed counters survive; only
    // per-attempt diagnostics of *completed* workflows are synthesized.
    let records = read_journal(&journal_path).expect("journal readable");
    let engine_cfg = EngineConfig::default();
    let replay = recover(&records, &registry, engine_cfg).expect("journal replays");
    let recompacted =
        compact_records(&records, &registry, engine_cfg).expect("crash-point journal compacts");
    let replay2 = recover(&recompacted, &registry, engine_cfg).expect("compacted journal replays");
    let (a, b) = (replay.engine.stats(), replay2.engine.stats());
    assert!(a.workflows_completed >= 2, "pre-crash progress recovered: {a:?}");
    assert_eq!(a.workflows_submitted, b.workflows_submitted, "equivalence: {a:?} vs {b:?}");
    assert_eq!(a.workflows_completed, b.workflows_completed, "equivalence: {a:?} vs {b:?}");
    assert_eq!(a.workflows_abandoned, b.workflows_abandoned, "equivalence: {a:?} vs {b:?}");
    assert_eq!(a.jobs_completed, b.jobs_completed, "equivalence: {a:?} vs {b:?}");
    assert_eq!(
        replay.redispatch.len(),
        replay2.redispatch.len(),
        "same in-flight frontier republished after failover"
    );

    // And the replacement master must finish the ensemble from that
    // journal, group-commit window and all.
    let master2 = spawn_master(bus.clone(), registry.clone(), mk_config(true));
    let stats = master2.join();
    worker.stop();
    bus.shutdown();

    assert_eq!(stats.workflows_completed, 4, "ensemble finished after failover");
    assert_eq!(stats.workflows_abandoned, 0);
    assert_eq!(stats.jobs_completed, 16);
    assert_eq!(stats.dead_lettered, 0);

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn restart_with_a_dead_worker_flags_it_and_still_finishes() {
    // Master kill + restart where one of two workers dies during the
    // outage and never re-registers. The replayed journal references it,
    // so the recovered liveness table carries it on a grace lease; when
    // that lapses the master must emit the structured
    // worker_lost_in_recovery warning, requeue whatever the journal says
    // it held, and finish the ensemble on the surviving worker — no
    // silent fallback, no lost jobs.
    let mut journal_path = std::env::temp_dir();
    journal_path.push(format!("dewe-recovery-deadworker-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let bus = MessageBus::new();
    let registry = Registry::new();
    let mk_config = |recover: bool| {
        MasterConfig::builder()
            .timeout_scan_interval(Duration::from_millis(10))
            .expected_workflows(2)
            .journal_path(journal_path.clone())
            .lease_secs(0.15)
            .recover(recover)
            .build()
    };
    let master = spawn_master(bus.clone(), registry.clone(), mk_config(false));
    let mk_worker = |id: u32| {
        spawn_worker(
            bus.clone(),
            registry.clone(),
            Arc::new(SleepRunner::new(0.02)),
            WorkerConfig {
                worker_id: id,
                slots: 1,
                pull_timeout: Duration::from_millis(10),
                heartbeat_interval: Some(Duration::from_millis(30)),
                ..WorkerConfig::default()
            },
        )
    };
    let w0 = mk_worker(0);
    let w1 = mk_worker(1);
    for i in 0..2 {
        submit(&bus, format!("c{i}"), chain(&format!("c{i}"), 12, 1.0));
    }

    // Let both registrations and a stretch of real progress hit the
    // journal, then crash the master mid-ensemble — well before either
    // chain completes (12 serial jobs × 20 ms each ≈ 240 ms) — and lose
    // worker 1 while it is down. The surviving work takes long enough
    // that worker 1's grace lease demonstrably lapses before the end.
    std::thread::sleep(Duration::from_millis(120));
    master.kill();
    w1.kill();

    let master2 = spawn_master(bus.clone(), registry.clone(), mk_config(true));
    loop {
        match master2.events.recv_timeout(Duration::from_secs(30)).expect("event") {
            MasterEvent::AllCompleted { .. } => break,
            MasterEvent::WorkflowCompleted { .. } => {}
            other => panic!("unexpected event {other:?}"),
        }
    }
    let ms = master2.master_stats();
    let stats = master2.join();
    w0.stop();
    bus.shutdown();

    assert_eq!(stats.workflows_completed, 2, "ensemble finished on the survivor");
    assert_eq!(stats.workflows_abandoned, 0);
    assert_eq!(stats.jobs_completed, 24);
    assert_eq!(ms.workers_lost_in_recovery, 1, "dead worker flagged, not silently dropped: {ms:?}");
    assert!(ms.workers_expired >= 1, "the grace lease lapsed: {ms:?}");

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn recovery_restarts_from_empty_journal_when_absent() {
    // recover=true with no journal on disk must behave like a cold start.
    let mut journal_path = std::env::temp_dir();
    journal_path.push(format!("dewe-recovery-cold-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);

    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(
        bus.clone(),
        registry.clone(),
        MasterConfig::builder()
            .timeout_scan_interval(Duration::from_millis(10))
            .expected_workflows(1)
            .journal_path(journal_path.clone())
            .recover(true)
            .build(),
    );
    let worker = spawn_worker(
        bus.clone(),
        registry,
        Arc::new(SleepRunner::new(0.001)),
        WorkerConfig {
            worker_id: 0,
            slots: 1,
            pull_timeout: Duration::from_millis(10),
            ..WorkerConfig::default()
        },
    );
    submit(&bus, "w", chain("w", 2, 1.0));
    let stats = master.join();
    worker.stop();
    bus.shutdown();
    assert_eq!(stats.workflows_completed, 1);

    let _ = std::fs::remove_file(&journal_path);
}
