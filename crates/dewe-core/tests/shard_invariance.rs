//! Shard-count invariance: a [`ShardedEngine`] is observationally a
//! partitioned [`EnsembleEngine`]. Driving the same ensemble through the
//! generic [`EngineCore`] surface with 1, 2 and 4 shards — and through the
//! plain single engine — must settle on the identical completion set, the
//! identical per-workflow makespans and abandonments, and conserved merged
//! statistics. The thread-parallel driver in deterministic barrier mode is
//! held to the same bar: identical completion sets, stats, and terminal
//! events as the sequential facade at every shard count.
//!
//! The driver is deliberately order-insensitive so routing cannot leak
//! into the outcome: every job attempt's fate is a pure function of its
//! *global* ensemble id, all acks within a round share one clock value,
//! and time only advances to the engine's own `next_deadline` when no
//! dispatch is immediately serviceable (parked backoff retries). Jitter is
//! disabled because the engine hashes *local* workflow ids into it — the
//! one place shard placement is allowed to show through timing.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use dewe_core::{
    AckKind, AckMsg, Action, DispatchMsg, EngineConfig, EngineCore, EngineStats, RetryPolicy,
    TimerBackend,
};
use dewe_dag::Workflow;
use dewe_montage::{random_layered, RandomDagConfig};
use proptest::prelude::*;

/// Everything externally observable about a settled run.
#[derive(Debug, PartialEq)]
struct Outcome {
    /// Completed workflows by global index, with their makespans.
    completed: BTreeMap<usize, f64>,
    /// Abandoned workflows by global index.
    abandoned: BTreeSet<usize>,
    /// Terminal events in emission order (`AllCompleted` / `AllSettled`).
    terminals: Vec<&'static str>,
    stats: EngineStats,
}

/// Scripted per-attempt fate, pure in the *global* ensemble job id so the
/// same attempt fails identically no matter which shard hosts it.
fn attempt_fails(seed: u64, d: &DispatchMsg) -> bool {
    let key = ((d.job.workflow.index() as u64) << 32)
        ^ ((d.job.job.index() as u64) << 8)
        ^ u64::from(d.attempt);
    let mut z = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)).is_multiple_of(5)
}

fn drain(actions: &[Action], queue: &mut VecDeque<DispatchMsg>, out: &mut Outcome) {
    for a in actions {
        match a {
            Action::Dispatch(d) => queue.push_back(*d),
            Action::WorkflowCompleted { workflow, makespan_secs } => {
                out.completed.insert(workflow.index(), *makespan_secs);
            }
            Action::WorkflowAbandoned { workflow, .. } => {
                out.abandoned.insert(workflow.index());
            }
            Action::AllCompleted => out.terminals.push("AllCompleted"),
            Action::AllSettled => out.terminals.push("AllSettled"),
            _ => {}
        }
    }
}

/// Drive any [`EngineCore`] to settlement and report the outcome.
fn settle<E: EngineCore>(mut engine: E, wfs: &[Arc<Workflow>], seed: u64) -> Outcome {
    let mut out = Outcome {
        completed: BTreeMap::new(),
        abandoned: BTreeSet::new(),
        terminals: Vec::new(),
        stats: EngineStats::default(),
    };
    let mut actions: Vec<Action> = Vec::new();
    let mut queue: VecDeque<DispatchMsg> = VecDeque::new();
    let mut now = 0.0f64;
    for (i, wf) in wfs.iter().enumerate() {
        now = i as f64 * 0.25;
        actions.clear();
        engine.submit_workflow(Arc::clone(wf), now, &mut actions);
        drain(&actions, &mut queue, &mut out);
    }
    let mut steps = 0usize;
    while !engine.all_settled() {
        steps += 1;
        assert!(steps < 200_000, "driver failed to converge");
        if let Some(d) = queue.pop_front() {
            actions.clear();
            engine.on_ack(AckMsg::new(d.job, 0, AckKind::Running, d.attempt), now, &mut actions);
            drain(&actions, &mut queue, &mut out);
            let kind = if attempt_fails(seed, &d) { AckKind::Failed } else { AckKind::Completed };
            actions.clear();
            engine.on_ack(AckMsg::new(d.job, 0, kind, d.attempt), now, &mut actions);
            drain(&actions, &mut queue, &mut out);
        } else if let Some(deadline) = engine.next_deadline() {
            // Only parked backoff retries remain: advance to them.
            now = now.max(deadline);
            actions.clear();
            engine.check_timeouts(now, &mut actions);
            drain(&actions, &mut queue, &mut out);
        } else {
            panic!("stuck: queue empty, no deadline, yet not settled");
        }
    }
    out.stats = engine.stats();
    out
}

fn workflow_strategy() -> impl Strategy<Value = Arc<Workflow>> {
    (1usize..4, 1usize..5, 0.05f64..0.8, 0.1f64..3.0, any::<u64>()).prop_map(
        |(layers, width, edge_probability, mean_cpu_seconds, seed)| {
            Arc::new(random_layered(&RandomDagConfig {
                layers,
                width,
                edge_probability,
                mean_cpu_seconds,
                seed,
            }))
        },
    )
}

fn config_strategy() -> impl Strategy<Value = EngineConfig> {
    (
        1u32..5,                                // retry cap
        prop_oneof![Just(0.0f64), 0.2f64..1.0], // backoff base
        1.2f64..2.5,                            // backoff factor
        prop_oneof![Just(TimerBackend::Heap), Just(TimerBackend::Wheel)],
    )
        .prop_map(|(cap, base, factor, backend)| {
            EngineConfig::default().timeout(30.0).timer_backend(backend).retry(RetryPolicy {
                max_attempts: Some(cap),
                backoff_base_secs: base,
                backoff_factor: factor,
                backoff_max_secs: 4.0,
                jitter_frac: 0.0,
                seed: 0,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: shard count is an implementation knob, not
    /// an observable. Single engine and 1/2/4-shard engines all settle on
    /// the same completion sets, makespans and merged statistics, and the
    /// merged stats conserve every job.
    #[test]
    fn outcome_is_invariant_in_the_shard_count(
        wfs in prop::collection::vec(workflow_strategy(), 1..6),
        config in config_strategy(),
        seed in any::<u64>(),
    ) {
        let single = settle(config.build(), &wfs, seed);
        // Backend invariance rides along: flipping the deadline-timer
        // backend (heap ↔ wheel) must not move the outcome either, at
        // any shard count below.
        let sampled = config.timer_backend;
        let flipped = match sampled {
            TimerBackend::Heap => TimerBackend::Wheel,
            TimerBackend::Wheel => TimerBackend::Heap,
        };
        let other_backend = settle(config.timer_backend(flipped).build(), &wfs, seed);
        prop_assert_eq!(
            &other_backend, &single,
            "timer backend {:?} diverged from {:?}", flipped, sampled
        );
        for shards in [1usize, 2, 4] {
            let sharded = settle(config.build_sharded(shards), &wfs, seed);
            prop_assert_eq!(
                &sharded, &single,
                "shards={} diverged from the single engine", shards
            );
            // The thread-parallel driver in deterministic barrier mode is
            // indistinguishable from the sequential facade: same
            // completions, same stats, same terminal events.
            let parallel = settle(config.build_parallel(shards, 2), &wfs, seed);
            prop_assert_eq!(
                &parallel, &single,
                "parallel shards={} diverged from the single engine", shards
            );
        }
        let total: u64 = wfs.iter().map(|w| w.job_count() as u64).sum();
        prop_assert_eq!(single.stats.jobs_completed + single.stats.jobs_abandoned, total);
        prop_assert_eq!(
            single.stats.workflows_completed + single.stats.workflows_abandoned,
            wfs.len()
        );
        prop_assert_eq!(single.completed.len() + single.abandoned.len(), wfs.len());
    }
}
