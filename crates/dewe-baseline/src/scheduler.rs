//! Matchmaking policies: which node gets an eligible job.
//!
//! The grid-era systems the paper discusses schedule jobs to specific
//! workers using resource-scheduling algorithms (§II). Three classic
//! policies are provided; the ablation bench quantifies how much of the
//! DEWE-vs-baseline gap is policy choice versus per-job overhead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Node-selection policy applied at each negotiation cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Assign to the node with the fewest queued + running jobs — the
    /// sensible default, what a well-configured matchmaker approximates.
    LeastLoaded,
    /// Cycle through nodes regardless of load.
    RoundRobin,
    /// Uniformly random node (seeded, deterministic).
    Random,
    /// Assign to the node with the lowest *speed-normalized* load
    /// (`load / speed`): the classic grid heuristic of steering work to
    /// faster machines. Only meaningful on heterogeneous clusters — on the
    /// paper's homogeneous clouds it degenerates to least-loaded, which is
    /// precisely the paper's argument that scheduling buys nothing there.
    FastestFirst,
}

/// Stateful scheduler over a fixed node set.
pub struct Scheduler {
    policy: Policy,
    nodes: usize,
    rr_next: usize,
    rng: StdRng,
    /// Per-node speed factors (1.0 = nominal), for [`Policy::FastestFirst`].
    speeds: Vec<f64>,
}

impl Scheduler {
    /// New scheduler for `nodes` nodes (homogeneous speeds).
    pub fn new(policy: Policy, nodes: usize, seed: u64) -> Self {
        assert!(nodes > 0);
        Self {
            policy,
            nodes,
            rr_next: 0,
            rng: StdRng::seed_from_u64(seed),
            speeds: vec![1.0; nodes],
        }
    }

    /// Attach per-node speed knowledge (the grid-era resource catalog).
    pub fn with_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.nodes);
        assert!(speeds.iter().all(|&s| s > 0.0));
        self.speeds = speeds;
        self
    }

    /// Pick a node for the next job. `load[i]` is node `i`'s current
    /// queued + running job count (the matchmaker's view of the pool).
    #[allow(clippy::needless_range_loop)] // argmin over parallel arrays
    pub fn pick(&mut self, load: &[usize]) -> usize {
        debug_assert_eq!(load.len(), self.nodes);
        match self.policy {
            Policy::LeastLoaded => {
                let mut best = 0;
                for i in 1..self.nodes {
                    if load[i] < load[best] {
                        best = i;
                    }
                }
                best
            }
            Policy::RoundRobin => {
                let n = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.nodes;
                n
            }
            Policy::Random => self.rng.gen_range(0..self.nodes),
            Policy::FastestFirst => {
                let mut best = 0;
                let mut best_cost = (load[0] as f64 + 1.0) / self.speeds[0];
                for i in 1..self.nodes {
                    let cost = (load[i] as f64 + 1.0) / self.speeds[i];
                    if cost < best_cost {
                        best = i;
                        best_cost = cost;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_prefers_minimum() {
        let mut s = Scheduler::new(Policy::LeastLoaded, 3, 0);
        assert_eq!(s.pick(&[5, 2, 9]), 1);
        // Ties break toward the lowest index.
        assert_eq!(s.pick(&[4, 4, 4]), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = Scheduler::new(Policy::RoundRobin, 3, 0);
        let picks: Vec<usize> = (0..6).map(|_| s.pick(&[0, 0, 0])).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = Scheduler::new(Policy::Random, 4, seed);
            (0..10).map(|_| s.pick(&[0, 0, 0, 0])).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_stays_in_range() {
        let mut s = Scheduler::new(Policy::Random, 2, 1);
        for _ in 0..100 {
            assert!(s.pick(&[0, 0]) < 2);
        }
    }

    #[test]
    fn fastest_first_prefers_fast_idle_node() {
        let mut s = Scheduler::new(Policy::FastestFirst, 3, 0).with_speeds(vec![0.5, 1.0, 2.0]);
        assert_eq!(s.pick(&[0, 0, 0]), 2, "fastest node wins when all idle");
        // Fast node loaded enough that the medium node is better:
        // (6+1)/2 = 3.5 vs (2+1)/1 = 3.0.
        assert_eq!(s.pick(&[4, 2, 6]), 1);
    }

    #[test]
    fn fastest_first_degenerates_to_least_loaded_when_homogeneous() {
        let mut ff = Scheduler::new(Policy::FastestFirst, 3, 0);
        let mut ll = Scheduler::new(Policy::LeastLoaded, 3, 0);
        for load in [[3, 1, 2], [0, 0, 5], [7, 7, 7]] {
            assert_eq!(ff.pick(&load), ll.pick(&load));
        }
    }
}
