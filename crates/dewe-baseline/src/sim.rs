//! The scheduling-based engine's simulated runtime.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use dewe_dag::{DependencyTracker, EnsembleJobId, Workflow, WorkflowId};
use dewe_metrics::{ClusterSampler, Gantt, SAMPLE_INTERVAL_SECS};
use dewe_simcloud::{ClusterConfig, ExecSim, JobProfile, SimEvent};

use crate::scheduler::{Policy, Scheduler};

/// Configuration of the Pegasus-like baseline.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// The cluster to run on (same substrate as DEWE v2 runs).
    pub cluster: ClusterConfig,
    /// Condor slots per node. The paper observes at most 20 concurrent
    /// threads on a 32-vCPU node (Fig. 6a).
    pub slots_per_node: u32,
    /// Matchmaking cadence in seconds: eligible jobs wait for the next
    /// cycle before being assigned to a node.
    pub negotiation_interval_secs: f64,
    /// Per-job scheduling + submission + wrapper overhead in CPU-seconds
    /// (DAGMan submit, matchmaking, kickstart wrapping).
    pub per_job_overhead_secs: f64,
    /// Multiplier on each job's output bytes (staging + kickstart records
    /// + transfer duplication; Fig. 6c).
    pub write_amplification: f64,
    /// Multiplier on each job's input bytes (Condor stage-in copies data to
    /// the execute directory instead of reading in place).
    pub read_amplification: f64,
    /// Additional log/bookkeeping bytes written per job.
    pub log_bytes_per_job: f64,
    /// Seconds of `pegasus-plan` work per workflow: Pegasus materializes
    /// the executable workflow (site selection, transfer jobs, submit
    /// files) before DAGMan sees any job. Planning runs serially on the
    /// submit host, so concurrently submitted workflows queue behind each
    /// other.
    pub planning_secs_per_workflow: f64,
    /// Node-selection policy.
    pub policy: Policy,
    /// Seed for the Random policy.
    pub seed: u64,
    /// Stagger between workflow submissions (0 = batch).
    pub submission_interval_secs: f64,
    /// Collect 3-second metrics samples.
    pub sample: bool,
    /// Record per-job spans.
    pub record_gantt: bool,
    /// Per-node CPU speed multipliers (heterogeneity ablation; `None` =
    /// homogeneous).
    pub node_speed_factors: Option<Vec<f64>>,
    /// Record a per-job lifecycle [`dewe_metrics::Trace`].
    pub record_trace: bool,
    /// Record an ordered [`BaselineEvent`] log (job starts and finishes
    /// in simulation processing order), making the baseline's schedule
    /// comparable against the other execution paths by differential
    /// testers.
    pub record_events: bool,
}

impl BaselineConfig {
    /// Defaults calibrated to the paper's observed Pegasus behaviour on
    /// c3.8xlarge (Fig. 6: ≤20 threads, ≤80% CPU, ~2x makespan, ~2x disk
    /// writes versus DEWE v2).
    pub fn new(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            slots_per_node: 20,
            negotiation_interval_secs: 2.0,
            per_job_overhead_secs: 1.2,
            write_amplification: 2.2,
            read_amplification: 1.8,
            log_bytes_per_job: 1e6,
            planning_secs_per_workflow: 150.0,
            policy: Policy::LeastLoaded,
            seed: 42,
            submission_interval_secs: 0.0,
            sample: false,
            record_gantt: false,
            node_speed_factors: None,
            record_trace: false,
            record_events: false,
        }
    }
}

/// One entry of the baseline's ordered schedule log: emitted in simulation
/// processing order, so "A finished before B started" can be read off the
/// log positions directly. This is the instrumentation differential
/// oracles use to check dependency order against the other engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaselineEvent {
    /// The job began executing on `node` at simulated time `at`.
    Started {
        /// Which job.
        job: EnsembleJobId,
        /// Node it was placed on.
        node: usize,
        /// Simulated seconds since ensemble start.
        at: f64,
    },
    /// The job finished at simulated time `at`.
    Finished {
        /// Which job.
        job: EnsembleJobId,
        /// Simulated seconds since ensemble start.
        at: f64,
    },
}

/// Results of a baseline run (same quantities as DEWE's `SimReport`).
pub struct BaselineReport {
    /// Seconds to complete the whole ensemble.
    pub makespan_secs: f64,
    /// Per-workflow makespans (submission → completion).
    pub workflow_makespans: Vec<f64>,
    /// All workflows completed.
    pub completed: bool,
    /// Total CPU busy core-seconds.
    pub total_cpu_core_secs: f64,
    /// Total disk bytes read.
    pub total_bytes_read: f64,
    /// Total logical bytes written (includes amplification and logs).
    pub total_bytes_written: f64,
    /// Jobs executed.
    pub jobs_executed: u64,
    /// 3-second samples, when requested.
    pub sampler: Option<ClusterSampler>,
    /// Per-job spans, when requested.
    pub gantt: Option<Gantt>,
    /// Per-job lifecycle trace, when requested.
    pub trace: Option<dewe_metrics::Trace>,
    /// Ordered start/finish schedule log, when requested.
    pub events: Option<Vec<BaselineEvent>>,
    /// Rental cost under hourly billing.
    pub cost_usd: f64,
}

const TAG_CYCLE: u64 = 1 << 56;
const TAG_SAMPLE: u64 = 2 << 56;
const TAG_SUBMIT: u64 = 3 << 56;
const TAG_MASK: u64 = 0xff << 56;

struct WfState {
    workflow: Arc<Workflow>,
    tracker: DependencyTracker,
    submitted_at: f64,
    makespan: f64,
}

/// Run an ensemble with the scheduling-based baseline.
pub fn run_ensemble(workflows: &[Arc<Workflow>], config: &BaselineConfig) -> BaselineReport {
    assert!(!workflows.is_empty());
    let nodes = config.cluster.nodes;
    let mut exec = ExecSim::new(config.cluster);
    let speeds = config.node_speed_factors.clone().unwrap_or_else(|| vec![1.0; nodes]);
    assert_eq!(speeds.len(), nodes, "one speed factor per node");
    for (n, &f) in speeds.iter().enumerate() {
        exec.cluster_mut().set_speed_factor(n, f);
    }
    let mut scheduler = Scheduler::new(config.policy, nodes, config.seed).with_speeds(speeds);
    let mut sampler =
        config.sample.then(|| ClusterSampler::new(nodes, config.cluster.instance.vcpus));
    let mut gantt = config.record_gantt.then(Gantt::new);
    let mut trace = config.record_trace.then(dewe_metrics::Trace::new);
    let mut events: Option<Vec<BaselineEvent>> = config.record_events.then(Vec::new);
    // (eligible/dispatch time, start time) per token, for tracing.
    let mut trace_times: HashMap<u64, (f64, f64)> = HashMap::new();
    let mut eligible_times: HashMap<u64, f64> = HashMap::new();

    let mut states: Vec<Option<WfState>> = (0..workflows.len()).map(|_| None).collect();
    // Jobs waiting for the next negotiation cycle.
    let mut pending: VecDeque<EnsembleJobId> = VecDeque::new();
    // Per-node local queues (assigned but not yet started).
    let mut node_queue: Vec<VecDeque<EnsembleJobId>> = vec![VecDeque::new(); nodes];
    let mut node_running: Vec<u32> = vec![0; nodes];
    let mut running: HashMap<u64, EnsembleJobId> = HashMap::new();
    // Matchmaking scratch: per-node load, reused across cycles.
    let mut load: Vec<usize> = Vec::with_capacity(nodes);
    // Scratch for jobs released by a completion, reused across events.
    let mut ready_scratch: Vec<dewe_dag::JobId> = Vec::new();
    let mut completed_workflows = 0usize;
    let mut all_done_at: Option<f64> = None;
    let mut jobs_executed = 0u64;

    // Submissions. Planning serializes on the submit host: workflow i's
    // jobs become visible to DAGMan only when its (queued) planning run
    // finishes.
    let mut planning_free_at = 0.0f64;
    for (i, _) in workflows.iter().enumerate() {
        let submitted = config.submission_interval_secs * i as f64;
        let planned = planning_free_at.max(submitted) + config.planning_secs_per_workflow;
        planning_free_at = planned;
        exec.schedule_wake(planned, TAG_SUBMIT | i as u64);
    }
    exec.schedule_wake(config.negotiation_interval_secs, TAG_CYCLE);
    if sampler.is_some() {
        exec.schedule_wake(SAMPLE_INTERVAL_SECS, TAG_SAMPLE);
    }

    fn token_of(job: EnsembleJobId) -> u64 {
        // Workflow in bits 32..56, job in bits 0..32. The old `<< 24`
        // packing silently collided with the wake-token tags once a
        // workflow exceeded 2^24 jobs; a full u32 job field cannot.
        debug_assert!(job.workflow.0 < (1 << 24), "workflow id must stay below the tag bytes");
        ((job.workflow.0 as u64) << 32) | job.job.0 as u64
    }

    fn file_key(wf: WorkflowId, f: dewe_dag::FileId) -> u64 {
        ((wf.0 as u64) << 32) | f.0 as u64
    }

    // Start queued jobs on nodes with free slots.
    #[allow(clippy::too_many_arguments)]
    fn start_ready(
        exec: &mut ExecSim,
        config: &BaselineConfig,
        states: &[Option<WfState>],
        node_queue: &mut [VecDeque<EnsembleJobId>],
        node_running: &mut [u32],
        running: &mut HashMap<u64, EnsembleJobId>,
        trace_times: &mut HashMap<u64, (f64, f64)>,
        eligible_times: &mut HashMap<u64, f64>,
        tracing: bool,
        events: &mut Option<Vec<BaselineEvent>>,
    ) {
        for node in 0..node_queue.len() {
            while node_running[node] < config.slots_per_node {
                let Some(job) = node_queue[node].pop_front() else { break };
                let state = states[job.workflow.index()].as_ref().expect("workflow submitted");
                let spec = state.workflow.job(job.job);
                let wf_id = job.workflow;
                let mut writes: Vec<(u64, f64)> = spec
                    .outputs
                    .iter()
                    .map(|&f| {
                        (
                            file_key(wf_id, f),
                            state.workflow.file(f).size_bytes as f64 * config.write_amplification,
                        )
                    })
                    .collect();
                if config.log_bytes_per_job > 0.0 {
                    // Log files are unique per job execution; key them by the
                    // job token in a reserved namespace so they never alias
                    // data files.
                    writes.push(((1 << 63) | token_of(job), config.log_bytes_per_job));
                }
                let profile = JobProfile {
                    reads: spec
                        .inputs
                        .iter()
                        .map(|&f| {
                            (
                                file_key(wf_id, f),
                                state.workflow.file(f).size_bytes as f64
                                    * config.read_amplification,
                            )
                        })
                        .collect(),
                    cpu_seconds: spec.cpu_seconds + config.per_job_overhead_secs,
                    cores: spec.cores,
                    writes,
                };
                node_running[node] += 1;
                if tracing {
                    let now = exec.now().as_secs_f64();
                    let eligible = eligible_times.remove(&token_of(job)).unwrap_or(now);
                    trace_times.insert(token_of(job), (eligible, now));
                }
                if let Some(ev) = events.as_mut() {
                    ev.push(BaselineEvent::Started { job, node, at: exec.now().as_secs_f64() });
                }
                running.insert(token_of(job), job);
                exec.submit_job(token_of(job), node, &profile);
            }
        }
    }

    while let Some(event) = exec.next() {
        match event {
            SimEvent::JobFinished { token, node, timings } => {
                let job = running.remove(&token).expect("finished job was running");
                if let Some(g) = gantt.as_mut() {
                    g.record(node, timings);
                }
                if let Some(tr) = trace.as_mut() {
                    let (dispatched, started) = trace_times.remove(&token).unwrap_or_default();
                    let state = states[job.workflow.index()].as_ref().expect("state");
                    tr.record(dewe_metrics::JobTrace {
                        workflow: job.workflow.0,
                        job: job.job.0,
                        xform: state.workflow.job(job.job).xform.clone(),
                        attempt: 1,
                        node,
                        dispatched,
                        started,
                        read_done: timings.read_done.as_secs_f64(),
                        compute_done: timings.compute_done.as_secs_f64(),
                        finished: timings.finished.as_secs_f64(),
                    });
                }
                node_running[node] -= 1;
                jobs_executed += 1;
                let now = exec.now().as_secs_f64();
                if let Some(ev) = events.as_mut() {
                    ev.push(BaselineEvent::Finished { job, at: now });
                }
                let state = states[job.workflow.index()].as_mut().expect("workflow state");
                let workflow = Arc::clone(&state.workflow);
                state.tracker.mark_running(job.job);
                state.tracker.complete(&workflow, job.job);
                state.tracker.drain_ready_into(&mut ready_scratch);
                for next in ready_scratch.drain(..) {
                    let next_job = EnsembleJobId::new(job.workflow, next);
                    if trace.is_some() {
                        eligible_times.insert(token_of(next_job), now);
                    }
                    pending.push_back(next_job);
                }
                if state.tracker.is_complete() && state.makespan == 0.0 {
                    state.makespan = now - state.submitted_at;
                    completed_workflows += 1;
                    if completed_workflows == workflows.len() {
                        all_done_at = Some(now);
                    }
                }
                // Freed slot: start whatever is queued locally.
                start_ready(
                    &mut exec,
                    config,
                    &states,
                    &mut node_queue,
                    &mut node_running,
                    &mut running,
                    &mut trace_times,
                    &mut eligible_times,
                    trace.is_some(),
                    &mut events,
                );
            }
            SimEvent::Wake { token } => match token & TAG_MASK {
                TAG_SUBMIT => {
                    let idx = (token & !TAG_MASK) as usize;
                    let now = exec.now().as_secs_f64();
                    let workflow = Arc::clone(&workflows[idx]);
                    let mut tracker = DependencyTracker::new(&workflow);
                    let wf_id = WorkflowId::from_index(idx);
                    tracker.drain_ready_into(&mut ready_scratch);
                    for root in ready_scratch.drain(..) {
                        let root_job = EnsembleJobId::new(wf_id, root);
                        if trace.is_some() {
                            eligible_times.insert(token_of(root_job), now);
                        }
                        pending.push_back(root_job);
                    }
                    let complete = tracker.is_complete();
                    states[idx] =
                        Some(WfState { workflow, tracker, submitted_at: now, makespan: 0.0 });
                    if complete {
                        completed_workflows += 1;
                        if completed_workflows == workflows.len() {
                            all_done_at = Some(now);
                        }
                    }
                }
                TAG_CYCLE => {
                    // Matchmaking: drain the pending set into node queues.
                    // Node load is computed once per cycle and updated as
                    // placements are made (rebuilding it per pending job
                    // made each cycle O(jobs x nodes)).
                    if !pending.is_empty() {
                        load.clear();
                        load.extend(
                            (0..nodes).map(|n| node_queue[n].len() + node_running[n] as usize),
                        );
                        while let Some(job) = pending.pop_front() {
                            let node = scheduler.pick(&load);
                            node_queue[node].push_back(job);
                            load[node] += 1;
                        }
                    }
                    start_ready(
                        &mut exec,
                        config,
                        &states,
                        &mut node_queue,
                        &mut node_running,
                        &mut running,
                        &mut trace_times,
                        &mut eligible_times,
                        trace.is_some(),
                        &mut events,
                    );
                    if all_done_at.is_none() {
                        exec.schedule_wake(config.negotiation_interval_secs, TAG_CYCLE);
                    }
                }
                TAG_SAMPLE => {
                    if let Some(s) = sampler.as_mut() {
                        let now = exec.now().as_secs_f64();
                        let counters: Vec<_> = (0..nodes).map(|n| exec.node_counters(n)).collect();
                        s.sample(now, &counters);
                    }
                    if all_done_at.is_none() {
                        exec.schedule_wake(SAMPLE_INTERVAL_SECS, TAG_SAMPLE);
                    }
                }
                _ => unreachable!("unknown wake tag"),
            },
        }
        match all_done_at {
            Some(_) if sampler.is_none() => break,
            Some(done) if exec.now().as_secs_f64() > done + 2.0 * SAMPLE_INTERVAL_SECS => break,
            _ => {}
        }
    }

    let makespan = all_done_at.unwrap_or_else(|| exec.now().as_secs_f64());
    let mut total_cpu = 0.0;
    let mut total_rd = 0.0;
    let mut total_wr = 0.0;
    for n in 0..nodes {
        let c = exec.node_counters(n);
        total_cpu += c.cpu_busy_core_secs;
        total_rd += c.bytes_read;
        total_wr += c.bytes_written;
    }
    let cost = exec.cluster().cost_model().cost(nodes, makespan);
    BaselineReport {
        makespan_secs: makespan,
        workflow_makespans: states.iter().map(|s| s.as_ref().map_or(0.0, |s| s.makespan)).collect(),
        completed: all_done_at.is_some(),
        total_cpu_core_secs: total_cpu,
        total_bytes_read: total_rd,
        total_bytes_written: total_wr,
        jobs_executed,
        sampler,
        gantt,
        trace,
        events,
        cost_usd: cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::WorkflowBuilder;
    use dewe_simcloud::{SharedFsKind, StorageConfig, C3_8XLARGE};

    fn cluster(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            instance: C3_8XLARGE,
            nodes,
            storage: StorageConfig::Shared(SharedFsKind::DistFs),
        }
    }

    fn parallel_wf(width: usize, secs: f64) -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("par");
        for i in 0..width {
            b.job(format!("j{i}"), "t", secs).build();
        }
        Arc::new(b.finish().unwrap())
    }

    fn lean(cluster: ClusterConfig) -> BaselineConfig {
        BaselineConfig {
            per_job_overhead_secs: 0.0,
            write_amplification: 1.0,
            read_amplification: 1.0,
            log_bytes_per_job: 0.0,
            planning_secs_per_workflow: 0.0,
            negotiation_interval_secs: 0.5,
            ..BaselineConfig::new(cluster)
        }
    }

    #[test]
    fn completes_simple_ensemble() {
        let report = run_ensemble(&[parallel_wf(40, 1.0)], &lean(cluster(1)));
        assert!(report.completed);
        assert_eq!(report.jobs_executed, 40);
        assert!(report.workflow_makespans[0] > 0.0);
    }

    #[test]
    fn concurrency_is_bounded_by_slots() {
        // 40 x 1 s jobs, 20 slots -> 2 waves plus cycle latency.
        let report = run_ensemble(&[parallel_wf(40, 1.0)], &lean(cluster(1)));
        assert!(report.makespan_secs >= 2.0);
        // Compared against: 40 jobs on a DEWE node (32 slots) ~ 2 s, but
        // baseline adds at least one negotiation wait.
        assert!(report.makespan_secs < 5.0, "{}", report.makespan_secs);
    }

    #[test]
    fn negotiation_cycle_delays_starts() {
        let quick = run_ensemble(&[parallel_wf(10, 1.0)], &lean(cluster(1)));
        let mut slow_cfg = lean(cluster(1));
        slow_cfg.negotiation_interval_secs = 10.0;
        let slow = run_ensemble(&[parallel_wf(10, 1.0)], &slow_cfg);
        assert!(slow.makespan_secs > quick.makespan_secs + 5.0);
    }

    #[test]
    fn write_amplification_inflates_disk_traffic() {
        let mut b = WorkflowBuilder::new("w");
        let f = b.file("out", 100_000_000, false);
        b.job("a", "t", 1.0).output(f).build();
        let wf = Arc::new(b.finish().unwrap());
        let mut cfg = lean(cluster(1));
        cfg.write_amplification = 2.0;
        cfg.log_bytes_per_job = 1e6;
        let report = run_ensemble(&[wf], &cfg);
        assert!((report.total_bytes_written - 201e6).abs() < 1e5, "{}", report.total_bytes_written);
    }

    #[test]
    fn per_job_overhead_extends_makespan() {
        let base = run_ensemble(&[parallel_wf(20, 1.0)], &lean(cluster(1)));
        let mut cfg = lean(cluster(1));
        cfg.per_job_overhead_secs = 3.0;
        let heavy = run_ensemble(&[parallel_wf(20, 1.0)], &cfg);
        assert!(heavy.makespan_secs > base.makespan_secs + 2.5);
    }

    #[test]
    fn all_policies_complete_the_same_work() {
        // Heterogeneous durations: placement quality differs by policy,
        // correctness must not.
        let mut b = WorkflowBuilder::new("mix");
        for i in 0..60 {
            b.job(format!("j{i}"), "t", if i % 10 == 0 { 20.0 } else { 1.0 }).build();
        }
        let wf = Arc::new(b.finish().unwrap());
        for policy in [Policy::LeastLoaded, Policy::RoundRobin, Policy::Random] {
            let mut cfg = lean(cluster(4));
            cfg.slots_per_node = 2;
            cfg.policy = policy;
            let report = run_ensemble(&[Arc::clone(&wf)], &cfg);
            assert!(report.completed, "{policy:?} did not finish");
            assert_eq!(report.jobs_executed, 60, "{policy:?} job count");
            // 8 total slots, 114 job-seconds of work: lower bound ~14.25 s.
            assert!(report.makespan_secs >= 14.0, "{policy:?}: {}", report.makespan_secs);
        }
    }

    #[test]
    fn deterministic() {
        let wf = parallel_wf(30, 0.8);
        let a = run_ensemble(&[Arc::clone(&wf)], &BaselineConfig::new(cluster(2)));
        let b = run_ensemble(&[wf], &BaselineConfig::new(cluster(2)));
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.total_bytes_written, b.total_bytes_written);
    }

    #[test]
    fn chain_dependencies_respected() {
        let mut b = WorkflowBuilder::new("chain");
        let x = b.job("x", "t", 1.0).build();
        let y = b.job("y", "t", 1.0).build();
        b.edge(x, y);
        let report = run_ensemble(&[Arc::new(b.finish().unwrap())], &lean(cluster(1)));
        assert!(report.completed);
        // Two serial seconds plus up to two negotiation waits.
        assert!(report.makespan_secs >= 2.0);
    }

    #[test]
    fn event_log_orders_starts_after_parent_finishes() {
        let mut b = WorkflowBuilder::new("chain");
        let x = b.job("x", "t", 1.0).build();
        let y = b.job("y", "t", 1.0).build();
        let z = b.job("z", "t", 1.0).build();
        b.edge(x, y);
        b.edge(y, z);
        let mut cfg = lean(cluster(1));
        cfg.record_events = true;
        let report = run_ensemble(&[Arc::new(b.finish().unwrap())], &cfg);
        let events = report.events.expect("record_events was set");
        // Exactly one Started and one Finished per job.
        let mut started: HashMap<EnsembleJobId, usize> = HashMap::new();
        let mut finished: HashMap<EnsembleJobId, usize> = HashMap::new();
        for (pos, ev) in events.iter().enumerate() {
            match *ev {
                BaselineEvent::Started { job, .. } => {
                    assert!(started.insert(job, pos).is_none(), "double start {job:?}");
                }
                BaselineEvent::Finished { job, .. } => {
                    assert!(started.contains_key(&job), "finished before started {job:?}");
                    assert!(finished.insert(job, pos).is_none(), "double finish {job:?}");
                }
            }
        }
        assert_eq!(started.len(), 3);
        assert_eq!(finished.len(), 3);
        // Dependency order: each child starts only after its parent's
        // Finished entry appears in the log.
        let wf = WorkflowId::from_index(0);
        for (parent, child) in [(x, y), (y, z)] {
            let p_fin = finished[&EnsembleJobId::new(wf, parent)];
            let c_start = started[&EnsembleJobId::new(wf, child)];
            assert!(p_fin < c_start, "child started at {c_start} before parent finished {p_fin}");
        }
    }

    #[test]
    fn sampling_observes_thread_cap() {
        let mut cfg = lean(cluster(1));
        cfg.sample = true;
        let report = run_ensemble(&[parallel_wf(200, 2.0)], &cfg);
        let threads = report.sampler.unwrap().total_threads();
        assert!(threads.max() <= 20.0, "thread cap violated: {}", threads.max());
    }
}
