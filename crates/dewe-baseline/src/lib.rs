//! # dewe-baseline
//!
//! A *scheduling-based* workflow management system modeled on the paper's
//! comparison stack — Pegasus (planning) + DAGMan (job release) + Condor
//! (matchmaking and execution). Within the paper's scope "Pegasus" means
//! this whole stack (§V.A), and that is what this crate reproduces.
//!
//! Where DEWE v2's stateless workers *pull* jobs, the baseline's master
//! *pushes*: it tracks every worker's state and assigns each eligible job
//! to a specific node during periodic **negotiation cycles** (Condor's
//! matchmaking). The costs the paper attributes to this design are modeled
//! explicitly and are individually tunable for ablation:
//!
//! * **per-job scheduling/submission overhead** — DAGMan submits each job
//!   through `condor_submit`, and each execution is wrapped (kickstart),
//!   adding CPU-seconds per job. The paper's Fig. 6a shows at most 20
//!   concurrent threads and Fig. 6b at most 80% CPU on a 32-vCPU node;
//! * **negotiation-cycle latency** — eligible jobs wait for the next
//!   matchmaking round instead of being grabbed by idle workers;
//! * **bounded concurrency** — at most `slots_per_node` Condor slots;
//! * **I/O amplification** — staging, kickstart records and per-job logs
//!   multiply the write volume (Fig. 6c / 7c show Pegasus writing far more
//!   than DEWE v2).
//!
//! Jobs execute on exactly the same [`dewe_simcloud::ExecSim`] substrate
//! as DEWE v2's simulated runtime, so any makespan difference is due to
//! coordination policy and its modeled overheads — the comparison the
//! paper makes.
//!
//! ```
//! use dewe_baseline::{run_ensemble, BaselineConfig};
//! use dewe_simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};
//! use dewe_dag::WorkflowBuilder;
//! use std::sync::Arc;
//!
//! let mut b = WorkflowBuilder::new("w");
//! for i in 0..40 {
//!     b.job(format!("j{i}"), "t", 1.0).build();
//! }
//! let cluster = ClusterConfig {
//!     instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk,
//! };
//! let report = run_ensemble(&[Arc::new(b.finish().unwrap())],
//!     &BaselineConfig::new(cluster));
//! assert!(report.completed);
//! assert_eq!(report.jobs_executed, 40);
//! ```

mod scheduler;
mod sim;

pub use scheduler::{Policy, Scheduler};
pub use sim::{run_ensemble, BaselineConfig, BaselineEvent, BaselineReport};
