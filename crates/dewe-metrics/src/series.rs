//! A named time series of (seconds, value) samples.

/// A time series with a name, for plotting and aggregation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    /// Series name (CSV column header).
    pub name: String,
    /// (time seconds, value) samples in nondecreasing time order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), points: Vec::new() }
    }

    /// Append a sample; time must be nondecreasing.
    pub fn push(&mut self, t: f64, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(lt, _)| t >= lt),
            "time series must be appended in time order"
        );
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum value (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Arithmetic mean of values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Trapezoidal integral of the series over time — e.g. integrating a
    /// MB/s rate series yields total MB, the quantity behind the paper's
    /// "total disk writes" bars (Fig. 7c).
    pub fn integrate(&self) -> f64 {
        self.points.windows(2).map(|w| 0.5 * (w[0].1 + w[1].1) * (w[1].0 - w[0].0)).sum()
    }

    /// Last sample time (0.0 when empty).
    pub fn end_time(&self) -> f64 {
        self.points.last().map_or(0.0, |&(t, _)| t)
    }

    /// Value at or before `t` (step interpolation; 0.0 before first sample).
    pub fn value_at(&self, t: f64) -> f64 {
        match self.points.binary_search_by(|&(pt, _)| pt.partial_cmp(&t).unwrap()) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("x");
        for &(t, v) in vals {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn basic_stats() {
        let s = series(&[(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max(), 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.end_time(), 2.0);
    }

    #[test]
    fn trapezoid_integration() {
        // Rate ramps 0 -> 10 over 2 s: integral = 10.
        let s = series(&[(0.0, 0.0), (2.0, 10.0)]);
        assert!((s.integrate() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn constant_rate_integrates_to_rate_times_time() {
        let s = series(&[(0.0, 5.0), (3.0, 5.0), (10.0, 5.0)]);
        assert!((s.integrate() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.integrate(), 0.0);
        assert_eq!(s.value_at(5.0), 0.0);
    }

    #[test]
    fn step_interpolation() {
        let s = series(&[(1.0, 10.0), (3.0, 20.0)]);
        assert_eq!(s.value_at(0.5), 0.0);
        assert_eq!(s.value_at(1.0), 10.0);
        assert_eq!(s.value_at(2.9), 10.0);
        assert_eq!(s.value_at(3.0), 20.0);
        assert_eq!(s.value_at(99.0), 20.0);
    }
}
