//! Structured execution traces: per-job lifecycle events.
//!
//! The sampler (3-second rates) answers "what did the cluster look like";
//! a trace answers "what happened to job X": when it was dispatched, how
//! long it waited in the queue, where it ran, how its time split across
//! read/compute/write, and whether it was resubmitted. The DEWE v2 sim
//! runtime emits these events when tracing is enabled; analyses here
//! compute the distributions (queue wait, per-transformation latency) and
//! export Chrome-tracing JSON (`chrome://tracing` / Perfetto) for visual
//! inspection of million-job runs.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::summary::Summary;

/// Lifecycle of one executed job attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// Workflow index within the ensemble.
    pub workflow: u32,
    /// Job index within the workflow.
    pub job: u32,
    /// Transformation name (shared, interned upstream as `Arc<str>` would
    /// be overkill here: traces are opt-in).
    pub xform: String,
    /// Delivery attempt (1 = first execution).
    pub attempt: u32,
    /// Node the attempt ran on.
    pub node: usize,
    /// When the master published the job, seconds.
    pub dispatched: f64,
    /// When a worker checked it out, seconds.
    pub started: f64,
    /// When its input reads finished, seconds.
    pub read_done: f64,
    /// When its compute finished, seconds.
    pub compute_done: f64,
    /// When its writes were admitted (completion), seconds.
    pub finished: f64,
}

impl JobTrace {
    /// Seconds spent queued between publication and checkout.
    pub fn queue_wait(&self) -> f64 {
        self.started - self.dispatched
    }

    /// Total execution seconds (checkout to completion).
    pub fn execution(&self) -> f64 {
        self.finished - self.started
    }
}

/// A collection of job traces with analysis helpers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<JobTrace>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed job attempt.
    pub fn record(&mut self, event: JobTrace) {
        debug_assert!(event.dispatched <= event.started);
        debug_assert!(event.started <= event.read_done);
        debug_assert!(event.read_done <= event.compute_done);
        debug_assert!(event.compute_done <= event.finished);
        self.events.push(event);
    }

    /// All recorded events.
    pub fn events(&self) -> &[JobTrace] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Queue-wait distribution (seconds) — the latency the pulling model
    /// is designed to keep small.
    pub fn queue_wait_summary(&self) -> Option<Summary> {
        Summary::of(&self.events.iter().map(JobTrace::queue_wait).collect::<Vec<_>>())
    }

    /// Execution-time distribution per transformation, sorted by name —
    /// quantifies the paper's homogeneity premise (tight distributions for
    /// mProjectPP/mDiffFit/mBackground).
    pub fn per_xform_summary(&self) -> Vec<(String, Summary)> {
        let mut groups: HashMap<&str, Vec<f64>> = HashMap::new();
        for e in &self.events {
            groups.entry(&e.xform).or_default().push(e.execution());
        }
        let mut out: Vec<(String, Summary)> = groups
            .into_iter()
            .filter_map(|(k, v)| Summary::of(&v).map(|s| (k.to_string(), s)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Events of one workflow.
    pub fn workflow_events(&self, workflow: u32) -> impl Iterator<Item = &JobTrace> {
        self.events.iter().filter(move |e| e.workflow == workflow)
    }

    /// Retried attempts (attempt > 1) — the fault-recovery record.
    pub fn resubmissions(&self) -> usize {
        self.events.iter().filter(|e| e.attempt > 1).count()
    }

    /// Export as Chrome-tracing "trace event format" JSON (complete
    /// events, microsecond timestamps; one row per node, read/compute/write
    /// sub-phases as nested events). Loadable in `chrome://tracing` or
    /// Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        let mut emit = |out: &mut String,
                        name: &str,
                        cat: &str,
                        node: usize,
                        start: f64,
                        end: f64| {
            if end <= start {
                return;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                r#"  {{"name":"{}","cat":"{}","ph":"X","ts":{:.0},"dur":{:.0},"pid":1,"tid":{}}}"#,
                escape_json(name),
                cat,
                start * 1e6,
                (end - start) * 1e6,
                node
            );
        };
        for e in &self.events {
            let label = format!("{} w{}j{}", e.xform, e.workflow, e.job);
            emit(&mut out, &label, "job", e.node, e.started, e.finished);
            emit(&mut out, "read", "phase", e.node, e.started, e.read_done);
            emit(&mut out, "compute", "phase", e.node, e.read_done, e.compute_done);
            emit(&mut out, "write", "phase", e.node, e.compute_done, e.finished);
        }
        out.push_str("\n]\n");
        out
    }

    /// Export as CSV (one row per attempt).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "workflow,job,xform,attempt,node,dispatched,started,read_done,compute_done,finished\n",
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
                e.workflow,
                e.job,
                e.xform.replace(',', "_"),
                e.attempt,
                e.node,
                e.dispatched,
                e.started,
                e.read_done,
                e.compute_done,
                e.finished
            );
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(wf: u32, job: u32, xform: &str, node: usize, base: f64) -> JobTrace {
        JobTrace {
            workflow: wf,
            job,
            xform: xform.into(),
            attempt: 1,
            node,
            dispatched: base,
            started: base + 0.5,
            read_done: base + 1.0,
            compute_done: base + 3.0,
            finished: base + 3.5,
        }
    }

    #[test]
    fn derived_durations() {
        let e = ev(0, 1, "t", 0, 10.0);
        assert_eq!(e.queue_wait(), 0.5);
        assert_eq!(e.execution(), 3.0);
    }

    #[test]
    fn queue_wait_summary() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.record(ev(0, i, "t", 0, i as f64));
        }
        let s = t.queue_wait_summary().unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn per_xform_grouping() {
        let mut t = Trace::new();
        t.record(ev(0, 0, "mProjectPP", 0, 0.0));
        t.record(ev(0, 1, "mProjectPP", 0, 1.0));
        t.record(ev(0, 2, "mDiffFit", 0, 2.0));
        let groups = t.per_xform_summary();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "mDiffFit");
        assert_eq!(groups[0].1.count, 1);
        assert_eq!(groups[1].1.count, 2);
    }

    #[test]
    fn workflow_slicing_and_resubmissions() {
        let mut t = Trace::new();
        t.record(ev(0, 0, "t", 0, 0.0));
        let mut retry = ev(1, 0, "t", 1, 5.0);
        retry.attempt = 2;
        t.record(retry);
        assert_eq!(t.workflow_events(0).count(), 1);
        assert_eq!(t.workflow_events(1).count(), 1);
        assert_eq!(t.resubmissions(), 1);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Trace::new();
        t.record(ev(0, 0, "mAdd", 2, 1.0));
        let json = t.to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""tid":2"#));
        assert!(json.contains("mAdd w0j0"));
        // 1 job event + 3 phases.
        assert_eq!(json.matches(r#""ph":"X""#).count(), 4);
    }

    #[test]
    fn csv_has_one_row_per_event() {
        let mut t = Trace::new();
        t.record(ev(0, 0, "a,b", 0, 0.0));
        t.record(ev(0, 1, "x", 0, 1.0));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("a_b"), "comma sanitized");
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert!(t.queue_wait_summary().is_none());
        assert_eq!(t.to_chrome_json().matches("ph").count(), 0);
    }
}
