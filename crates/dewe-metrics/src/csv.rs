//! CSV serialization for time series and generic tables.
//!
//! Experiments write their raw data as CSV under `results/` so that the
//! paper's figures can be replotted with any tool.

use crate::series::TimeSeries;
use std::fmt::Write as _;

/// Serialize several series sharing a time base into one CSV document with
/// a `time_s` column. Series are step-sampled at the union of all sample
/// times.
pub fn series_to_csv(series: &[&TimeSeries]) -> String {
    let mut out = String::new();
    out.push_str("time_s");
    for s in series {
        let _ = write!(out, ",{}", sanitize(&s.name));
    }
    out.push('\n');

    // Union of sample times.
    let mut times: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    for t in times {
        let _ = write!(out, "{t}");
        for s in series {
            let _ = write!(out, ",{}", s.value_at(t));
        }
        out.push('\n');
    }
    out
}

/// Serialize a generic table: header row + data rows.
pub fn table_to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.iter().map(|h| sanitize(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        debug_assert_eq!(row.len(), header.len(), "row width must match header");
        out.push_str(&row.iter().map(|c| sanitize(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

fn sanitize(s: &str) -> String {
    // Commas and newlines would corrupt the document; replace them.
    s.replace([',', '\n', '\r'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_series_roundtrip_shape() {
        let mut s = TimeSeries::new("cpu");
        s.push(0.0, 1.0);
        s.push(3.0, 2.0);
        let csv = series_to_csv(&[&s]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,cpu");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn multiple_series_align_on_time_union() {
        let mut a = TimeSeries::new("a");
        a.push(0.0, 1.0);
        a.push(2.0, 3.0);
        let mut b = TimeSeries::new("b");
        b.push(1.0, 10.0);
        let csv = series_to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + t=0,1,2
        assert_eq!(lines[2], "1,1,10"); // a holds (step), b=10
    }

    #[test]
    fn table_layout() {
        let csv = table_to_csv(
            &["name", "value"],
            &[vec!["x".into(), "1".into()], vec!["y".into(), "2".into()]],
        );
        assert_eq!(csv, "name,value\nx,1\ny,2\n");
    }

    #[test]
    fn sanitization_removes_separators() {
        let csv = table_to_csv(&["a,b"], &[vec!["line\nbreak".into()]]);
        assert!(csv.starts_with("a_b\n"));
        assert!(csv.contains("line_break"));
    }

    #[test]
    fn empty_series_produces_header_only() {
        let s = TimeSeries::new("x");
        assert_eq!(series_to_csv(&[&s]), "time_s,x\n");
    }
}
