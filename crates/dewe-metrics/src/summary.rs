//! Distribution summaries for experiment reporting.
//!
//! Makespans, per-job latencies and queue waits are distributions, not
//! single numbers; [`Summary`] provides the standard descriptive
//! statistics and [`Histogram`] fixed-width buckets for terminal
//! rendering (used by the bench harness to report per-job latency shapes).

/// Descriptive statistics over a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Percentiles: p50, p90, p99 (nearest-rank).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let pct = |p: f64| -> f64 {
            let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as usize;
            sorted[rank - 1]
        };
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            stddev: var.sqrt(),
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
        })
    }

    /// Coefficient of variation (stddev / mean; 0 when mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Fixed-width histogram over a value range.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    /// Samples below `lo` / above `hi`.
    pub underflow: u64,
    /// Samples above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// New histogram over `[lo, hi)` with `buckets` equal-width bins.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo && buckets > 0);
        Self { lo, hi, buckets: vec![0; buckets], underflow: 0, overflow: 0 }
    }

    /// Record a sample.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((v - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total recorded samples (including out-of-range).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// ASCII bar rendering, one row per bucket.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let step = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut out = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            let bar = "#".repeat((n as usize * width) / max as usize);
            let _ = writeln!(
                out,
                "[{:>10.2}, {:>10.2}) {:>8} |{bar}",
                self.lo + step * i as f64,
                self.lo + step * (i + 1) as f64,
                n
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p90, 5.0);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!((s.min, s.max, s.mean, s.p50, s.p99), (7.0, 7.0, 7.0, 7.0, 7.0));
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&values).unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 25.0] {
            h.record(v);
        }
        assert_eq!(h.buckets(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_renders_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        h.record(0.6);
        h.record(1.5);
        let r = h.render(10);
        assert!(r.lines().count() == 2);
        assert!(r.contains("##########"), "fullest bucket gets full width");
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }
}
