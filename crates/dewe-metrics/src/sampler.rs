//! The mpstat/iostat-equivalent sampler.

use crate::series::TimeSeries;
use dewe_simcloud::NodeCounters;

/// The paper's monitoring cadence: metrics every 3 seconds (§IV.A).
pub const SAMPLE_INTERVAL_SECS: f64 = 3.0;

/// Per-node rate series produced by the sampler.
#[derive(Debug, Clone)]
pub struct NodeSeries {
    /// CPU utilization in percent of the node's vCPUs.
    pub cpu_util: TimeSeries,
    /// Disk read throughput, MB/s.
    pub read_mbps: TimeSeries,
    /// Disk write throughput, MB/s.
    pub write_mbps: TimeSeries,
    /// Concurrent job threads.
    pub threads: TimeSeries,
}

impl NodeSeries {
    fn new(node: usize) -> Self {
        Self {
            cpu_util: TimeSeries::new(format!("node{node}_cpu_util_pct")),
            read_mbps: TimeSeries::new(format!("node{node}_read_mbps")),
            write_mbps: TimeSeries::new(format!("node{node}_write_mbps")),
            threads: TimeSeries::new(format!("node{node}_threads")),
        }
    }
}

/// Converts cumulative [`NodeCounters`] snapshots into per-interval rates.
///
/// Call [`sample`](Self::sample) at a fixed cadence with the counters of
/// every node; rate = Δcounter / Δt, mirroring how mpstat/iostat derive
/// rates from kernel counters.
pub struct ClusterSampler {
    vcpus: u32,
    last_time: f64,
    last: Vec<NodeCounters>,
    series: Vec<NodeSeries>,
}

impl ClusterSampler {
    /// Sampler for `nodes` nodes of `vcpus` vCPUs each.
    pub fn new(nodes: usize, vcpus: u32) -> Self {
        Self {
            vcpus,
            last_time: 0.0,
            last: vec![NodeCounters::default(); nodes],
            series: (0..nodes).map(NodeSeries::new).collect(),
        }
    }

    /// Record a snapshot at time `now` (seconds). `counters[i]` must be the
    /// cumulative counters of node `i`.
    pub fn sample(&mut self, now: f64, counters: &[NodeCounters]) {
        assert_eq!(counters.len(), self.series.len(), "node count changed mid-run");
        let dt = now - self.last_time;
        if dt <= 0.0 {
            return;
        }
        for (i, (&cur, prev)) in counters.iter().zip(&mut self.last).enumerate() {
            let s = &mut self.series[i];
            let cpu_pct = 100.0 * (cur.cpu_busy_core_secs - prev.cpu_busy_core_secs)
                / (dt * self.vcpus as f64);
            s.cpu_util.push(now, cpu_pct.clamp(0.0, 100.0));
            s.read_mbps.push(now, (cur.bytes_read - prev.bytes_read) / dt / 1e6);
            s.write_mbps.push(now, (cur.bytes_written - prev.bytes_written) / dt / 1e6);
            s.threads.push(now, cur.threads_running as f64);
            *prev = cur;
        }
        self.last_time = now;
    }

    /// Per-node series recorded so far.
    pub fn node_series(&self) -> &[NodeSeries] {
        &self.series
    }

    /// Cluster-mean CPU utilization series (average across nodes per tick).
    pub fn mean_cpu_util(&self) -> TimeSeries {
        self.mean_of(|n| &n.cpu_util, "cluster_cpu_util_pct")
    }

    /// Cluster-total read throughput series.
    pub fn total_read_mbps(&self) -> TimeSeries {
        self.sum_of(|n| &n.read_mbps, "cluster_read_mbps")
    }

    /// Cluster-total write throughput series.
    pub fn total_write_mbps(&self) -> TimeSeries {
        self.sum_of(|n| &n.write_mbps, "cluster_write_mbps")
    }

    /// Cluster-total concurrent threads series.
    pub fn total_threads(&self) -> TimeSeries {
        self.sum_of(|n| &n.threads, "cluster_threads")
    }

    fn mean_of(&self, f: impl Fn(&NodeSeries) -> &TimeSeries, name: &str) -> TimeSeries {
        let mut out = self.sum_of(f, name);
        let n = self.series.len().max(1) as f64;
        for p in &mut out.points {
            p.1 /= n;
        }
        out
    }

    fn sum_of(&self, f: impl Fn(&NodeSeries) -> &TimeSeries, name: &str) -> TimeSeries {
        let mut out = TimeSeries::new(name);
        if self.series.is_empty() {
            return out;
        }
        let len = f(&self.series[0]).len();
        for k in 0..len {
            let t = f(&self.series[0]).points[k].0;
            let v: f64 = self.series.iter().map(|s| f(s).points[k].1).sum();
            out.push(t, v);
        }
        out
    }

    /// Final cumulative totals: (cpu core-seconds, bytes read, bytes
    /// written) summed over nodes — the quantities of paper Fig. 7b/7c.
    pub fn totals(&self) -> (f64, f64, f64) {
        let cpu = self.last.iter().map(|c| c.cpu_busy_core_secs).sum();
        let rd = self.last.iter().map(|c| c.bytes_read).sum();
        let wr = self.last.iter().map(|c| c.bytes_written).sum();
        (cpu, rd, wr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(cpu: f64, rd: f64, wr: f64, thr: u32) -> NodeCounters {
        NodeCounters {
            cpu_busy_core_secs: cpu,
            bytes_read: rd,
            bytes_written: wr,
            threads_running: thr,
            cores_busy: 0,
        }
    }

    #[test]
    fn rates_are_deltas_over_dt() {
        let mut s = ClusterSampler::new(1, 32);
        s.sample(3.0, &[counters(48.0, 30e6, 60e6, 5)]);
        let n = &s.node_series()[0];
        // 48 core-seconds over 3 s on 32 cores = 50%.
        assert!((n.cpu_util.points[0].1 - 50.0).abs() < 1e-9);
        assert!((n.read_mbps.points[0].1 - 10.0).abs() < 1e-9);
        assert!((n.write_mbps.points[0].1 - 20.0).abs() < 1e-9);
        assert_eq!(n.threads.points[0].1, 5.0);
    }

    #[test]
    fn second_sample_uses_previous_snapshot() {
        let mut s = ClusterSampler::new(1, 32);
        s.sample(3.0, &[counters(48.0, 0.0, 0.0, 0)]);
        s.sample(6.0, &[counters(48.0, 0.0, 0.0, 0)]); // no progress
        assert_eq!(s.node_series()[0].cpu_util.points[1].1, 0.0);
    }

    #[test]
    fn cpu_clamped_to_100() {
        let mut s = ClusterSampler::new(1, 32);
        s.sample(1.0, &[counters(100.0, 0.0, 0.0, 0)]);
        assert_eq!(s.node_series()[0].cpu_util.points[0].1, 100.0);
    }

    #[test]
    fn aggregates_sum_and_mean() {
        let mut s = ClusterSampler::new(2, 32);
        s.sample(3.0, &[counters(96.0, 30e6, 0.0, 2), counters(0.0, 30e6, 0.0, 3)]);
        assert!((s.mean_cpu_util().points[0].1 - 50.0).abs() < 1e-9);
        assert!((s.total_read_mbps().points[0].1 - 20.0).abs() < 1e-9);
        assert_eq!(s.total_threads().points[0].1, 5.0);
    }

    #[test]
    fn totals_reflect_final_counters() {
        let mut s = ClusterSampler::new(2, 32);
        s.sample(3.0, &[counters(10.0, 1.0, 2.0, 0), counters(20.0, 3.0, 4.0, 0)]);
        assert_eq!(s.totals(), (30.0, 4.0, 6.0));
    }

    #[test]
    fn zero_dt_sample_is_ignored() {
        let mut s = ClusterSampler::new(1, 32);
        s.sample(3.0, &[counters(48.0, 0.0, 0.0, 0)]);
        s.sample(3.0, &[counters(96.0, 0.0, 0.0, 0)]);
        assert_eq!(s.node_series()[0].cpu_util.len(), 1);
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn node_count_mismatch_panics() {
        let mut s = ClusterSampler::new(2, 32);
        s.sample(3.0, &[counters(0.0, 0.0, 0.0, 0)]);
    }
}
