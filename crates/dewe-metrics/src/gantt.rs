//! Per-vCPU-slot timeline rendering (paper Fig. 2).
//!
//! Fig. 2 of the paper visualizes one workflow run as rows of vCPU slots,
//! with compute time and data-staging (communication) time distinguished
//! per job. [`Gantt`] reconstructs that view from per-job phase timings:
//! jobs are assigned to the lowest-indexed free slot on their node, then
//! rendered as ASCII rows (`#` compute, `-` staging, space idle).

use dewe_simcloud::JobTimings;

/// One executed job's placement and phase timings.
#[derive(Debug, Clone, Copy)]
pub struct JobSpan {
    /// Node the job ran on.
    pub node: usize,
    /// Phase milestones.
    pub timings: JobTimings,
}

/// Collects job spans and renders a per-slot timeline.
#[derive(Debug, Default)]
pub struct Gantt {
    spans: Vec<JobSpan>,
}

impl Gantt {
    /// Empty gantt.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a finished job.
    pub fn record(&mut self, node: usize, timings: JobTimings) {
        self.spans.push(JobSpan { node, timings });
    }

    /// Number of recorded jobs.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Makespan (latest finish time, seconds).
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.timings.finished.as_secs_f64()).fold(0.0, f64::max)
    }

    /// Total compute seconds across all jobs.
    pub fn total_compute_secs(&self) -> f64 {
        self.spans.iter().map(|s| s.timings.compute_secs()).sum()
    }

    /// Total staging (communication) seconds across all jobs.
    pub fn total_staging_secs(&self) -> f64 {
        self.spans.iter().map(|s| s.timings.staging_secs()).sum()
    }

    /// Assign jobs to per-node slots (lowest free slot at submit time).
    /// Returns, per node, a vector of slots, each a list of span indices.
    fn slot_assignment(&self) -> Vec<Vec<Vec<usize>>> {
        let nodes = self.spans.iter().map(|s| s.node).max().map_or(0, |m| m + 1);
        let mut order: Vec<usize> = (0..self.spans.len()).collect();
        order.sort_by(|&a, &b| {
            self.spans[a].timings.submitted.cmp(&self.spans[b].timings.submitted).then(a.cmp(&b))
        });
        let mut per_node: Vec<Vec<Vec<usize>>> = vec![Vec::new(); nodes];
        // slot_free[node][slot] = time the slot becomes free
        let mut slot_free: Vec<Vec<f64>> = vec![Vec::new(); nodes];
        for idx in order {
            let s = &self.spans[idx];
            let start = s.timings.submitted.as_secs_f64();
            let end = s.timings.finished.as_secs_f64();
            let frees = &mut slot_free[s.node];
            let slot = match frees.iter().position(|&f| f <= start + 1e-9) {
                Some(k) => k,
                None => {
                    frees.push(0.0);
                    per_node[s.node].push(Vec::new());
                    frees.len() - 1
                }
            };
            frees[slot] = end;
            per_node[s.node][slot].push(idx);
        }
        per_node
    }

    /// Render as ASCII: one row per (node, slot), `width` characters across
    /// the full makespan. `#` = compute, `-` = staging, ` ` = idle.
    pub fn render_ascii(&self, width: usize) -> String {
        let mut out = String::new();
        let makespan = self.makespan().max(1e-9);
        let scale = width as f64 / makespan;
        let assignment = self.slot_assignment();
        for (node, slots) in assignment.iter().enumerate() {
            out.push_str(&format!("node {node} ({} slots used)\n", slots.len()));
            for (slot, jobs) in slots.iter().enumerate() {
                let mut row = vec![b' '; width];
                for &idx in jobs {
                    let t = &self.spans[idx].timings;
                    let paint = |row: &mut Vec<u8>, a: f64, b: f64, ch: u8| {
                        let i0 = ((a * scale) as usize).min(width.saturating_sub(1));
                        let i1 = ((b * scale).ceil() as usize).clamp(i0 + 1, width);
                        for c in &mut row[i0..i1] {
                            // staging never overwrites compute marks
                            if *c == b' ' || ch == b'#' {
                                *c = ch;
                            }
                        }
                    };
                    paint(&mut row, t.submitted.as_secs_f64(), t.read_done.as_secs_f64(), b'-');
                    paint(&mut row, t.read_done.as_secs_f64(), t.compute_done.as_secs_f64(), b'#');
                    paint(&mut row, t.compute_done.as_secs_f64(), t.finished.as_secs_f64(), b'-');
                }
                out.push_str(&format!("  s{slot:02} |{}|\n", String::from_utf8(row).unwrap()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_simcloud::SimTime;

    fn timings(sub: f64, rd: f64, cd: f64, fin: f64) -> JobTimings {
        JobTimings {
            submitted: SimTime::from_secs_f64(sub),
            read_done: SimTime::from_secs_f64(rd),
            compute_done: SimTime::from_secs_f64(cd),
            finished: SimTime::from_secs_f64(fin),
        }
    }

    #[test]
    fn makespan_and_totals() {
        let mut g = Gantt::new();
        g.record(0, timings(0.0, 1.0, 5.0, 6.0));
        g.record(0, timings(2.0, 2.0, 8.0, 10.0));
        assert_eq!(g.makespan(), 10.0);
        assert!((g.total_compute_secs() - 10.0).abs() < 1e-9);
        assert!((g.total_staging_secs() - 4.0).abs() < 1e-9);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn overlapping_jobs_get_distinct_slots() {
        let mut g = Gantt::new();
        g.record(0, timings(0.0, 0.0, 5.0, 5.0));
        g.record(0, timings(1.0, 1.0, 4.0, 4.0)); // overlaps the first
        g.record(0, timings(6.0, 6.0, 7.0, 7.0)); // fits in slot 0
        let render = g.render_ascii(40);
        assert!(render.contains("2 slots used"));
    }

    #[test]
    fn sequential_jobs_reuse_slot() {
        let mut g = Gantt::new();
        g.record(0, timings(0.0, 0.0, 1.0, 1.0));
        g.record(0, timings(1.0, 1.0, 2.0, 2.0));
        let render = g.render_ascii(20);
        assert!(render.contains("1 slots used"));
    }

    #[test]
    fn nodes_render_separately() {
        let mut g = Gantt::new();
        g.record(0, timings(0.0, 0.0, 1.0, 1.0));
        g.record(1, timings(0.0, 0.0, 1.0, 1.0));
        let render = g.render_ascii(10);
        assert!(render.contains("node 0"));
        assert!(render.contains("node 1"));
    }

    #[test]
    fn ascii_contains_compute_and_staging_marks() {
        let mut g = Gantt::new();
        g.record(0, timings(0.0, 3.0, 7.0, 10.0));
        let render = g.render_ascii(10);
        assert!(render.contains('#'));
        assert!(render.contains('-'));
    }

    #[test]
    fn empty_gantt_renders_nothing() {
        let g = Gantt::new();
        assert!(g.is_empty());
        assert_eq!(g.render_ascii(10), "");
        assert_eq!(g.makespan(), 0.0);
    }
}
