//! # dewe-metrics
//!
//! Monitoring and reporting for DEWE v2 experiments.
//!
//! The paper runs "a background monitoring process on all worker nodes to
//! collect operating system level metrics every 3 seconds using mpstat and
//! iostat" (§IV.A): concurrent threads, CPU utilization, and disk
//! read/write throughput. [`ClusterSampler`] is that process for the
//! simulated cluster: feed it per-node cumulative counters at a fixed
//! cadence and it produces the per-node rate [`TimeSeries`] behind the
//! paper's Figs. 4, 6, 9 and 10, plus the integrated totals behind Fig. 7
//! (total CPU time, total disk writes).
//!
//! [`Gantt`] renders the per-vCPU-slot timeline of Fig. 2 from per-job
//! phase timings, and [`csv`] serializes any set of series for plotting.
//!
//! ```
//! use dewe_metrics::{ClusterSampler, Summary};
//! use dewe_simcloud::NodeCounters;
//!
//! let mut sampler = ClusterSampler::new(1, 32);
//! sampler.sample(3.0, &[NodeCounters {
//!     cpu_busy_core_secs: 48.0, // 48 core-s over 3 s on 32 cores = 50%
//!     bytes_read: 30e6,
//!     bytes_written: 0.0,
//!     threads_running: 5,
//!     cores_busy: 16,
//! }]);
//! assert_eq!(sampler.mean_cpu_util().points[0].1, 50.0);
//!
//! let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
//! assert_eq!(s.p50, 2.0);
//! ```

mod gantt;
mod sampler;
mod series;
mod summary;
mod trace;

pub mod csv;

pub use gantt::{Gantt, JobSpan};
pub use sampler::{ClusterSampler, NodeSeries, SAMPLE_INTERVAL_SECS};
pub use series::TimeSeries;
pub use summary::{Histogram, Summary};
pub use trace::{JobTrace, Trace};
