//! # dewe-provision
//!
//! The paper's profiling-based resource provisioning strategy (§IV):
//!
//! 1. **Profile** — run small-scale experiments (single node with a
//!    growing workload; a fixed workload on a growing cluster) and measure
//!    execution times.
//! 2. **Node performance index** — `P = W / (N · T)` (workflows per
//!    node-second, Eq. 1). As clusters grow, `P` decreases and converges
//!    (clustering performance degradation, Fig. 5c).
//! 3. **Size the cluster** — for an ensemble of `W` workflows and a
//!    deadline `T`, rent `N = W / (P · T)` nodes (Eq. 2), using the
//!    *converged* index. Combined with hourly billing, this yields the
//!    cheapest cluster that meets the deadline (Table III, Fig. 11).
//!
//! The profiler runs the DEWE v2 simulated runtime, mirroring how the
//! authors profiled on real (small) EC2 clusters before renting 1,000-core
//! ones.
//!
//! ```
//! use dewe_provision::{node_performance_index, required_nodes};
//!
//! // A 4-node cluster ran 20 workflows in 2,500 s:
//! let p = node_performance_index(20, 4, 2500.0); // Eq. 1
//! assert!((p - 0.002).abs() < 1e-9);
//! // Nodes needed for 200 workflows inside a 55-minute deadline (Eq. 2):
//! assert_eq!(required_nodes(200, 0.0015, 3300.0), 41);
//! ```

mod dynamic;
mod index;
mod profile;
mod sizing;
mod validate;
mod whatif;

pub use dynamic::{compare_billing, DynamicPlan, ScaleAction};
pub use index::{converged_index, node_performance_index, IndexPoint};
pub use profile::{ProfileConfig, ProfileResult, Profiler};
pub use sizing::{recommend, required_nodes, ClusterPlan};
pub use validate::{validate_plan, PlanValidation};
pub use whatif::{cost_deadline_frontier, knee, FrontierPoint};
