//! Cluster sizing under cost and deadline constraints (paper Eq. 2,
//! Table III).

use dewe_simcloud::{CostModel, InstanceType};

/// The paper's Eq. 2: `N = W / (P * T)` nodes to finish `W` workflows
/// within `T` seconds at converged index `P`, rounded up to whole nodes.
pub fn required_nodes(workflows: usize, index: f64, deadline_secs: f64) -> usize {
    assert!(index > 0.0 && deadline_secs > 0.0);
    (workflows as f64 / (index * deadline_secs)).ceil().max(1.0) as usize
}

/// A provisioning recommendation for one instance type.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlan {
    /// Instance type name.
    pub instance: &'static str,
    /// Nodes to rent.
    pub nodes: usize,
    /// Converged node performance index used.
    pub index: f64,
    /// Predicted execution time `W / (P * N)` in seconds.
    pub predicted_secs: f64,
    /// Hourly cluster price, USD.
    pub price_per_hour: f64,
    /// Predicted rental cost, USD (hourly billing).
    pub predicted_cost: f64,
    /// Predicted cost per workflow, USD.
    pub price_per_workflow: f64,
}

/// Build a plan per instance type, cheapest first (the decision Table III
/// embodies: for W = 200 and T = 3300 s, rent c3 x 40 / r3 x 25 / i2 x 23).
pub fn recommend(
    candidates: &[(&'static InstanceType, f64)],
    workflows: usize,
    deadline_secs: f64,
) -> Vec<ClusterPlan> {
    assert!(workflows > 0);
    let mut plans: Vec<ClusterPlan> = candidates
        .iter()
        .map(|&(itype, index)| {
            let nodes = required_nodes(workflows, index, deadline_secs);
            let predicted_secs = workflows as f64 / (index * nodes as f64);
            let model = CostModel::hourly(itype.price_per_hour);
            let predicted_cost = model.cost(nodes, predicted_secs);
            ClusterPlan {
                instance: itype.name,
                nodes,
                index,
                predicted_secs,
                price_per_hour: itype.price_per_hour * nodes as f64,
                predicted_cost,
                price_per_workflow: predicted_cost / workflows as f64,
            }
        })
        .collect();
    plans.sort_by(|a, b| a.predicted_cost.partial_cmp(&b.predicted_cost).unwrap());
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_simcloud::{C3_8XLARGE, I2_8XLARGE, R3_8XLARGE};

    /// The paper's converged indexes (§IV.B).
    const PAPER_INDEXES: [(f64, &str); 3] =
        [(0.0015, "c3.8xlarge"), (0.0024, "r3.8xlarge"), (0.0026, "i2.8xlarge")];

    #[test]
    fn table3_cluster_sizes() {
        // W = 200, T = 3300 s -> 41/26/24 by strict ceiling; the paper
        // rounds to 40/25/23, within one node of Eq. 2. Accept ±1.
        let t = 3300.0;
        for &(p, name) in &PAPER_INDEXES {
            let n = required_nodes(200, p, t);
            let paper_n = match name {
                "c3.8xlarge" => 40,
                "r3.8xlarge" => 25,
                _ => 23,
            };
            assert!((n as i64 - paper_n).abs() <= 1, "{name}: got {n}, paper used {paper_n}");
        }
    }

    #[test]
    fn more_workflows_need_more_nodes() {
        assert!(required_nodes(400, 0.0015, 3300.0) > required_nodes(200, 0.0015, 3300.0));
    }

    #[test]
    fn longer_deadline_needs_fewer_nodes() {
        assert!(required_nodes(200, 0.0015, 6600.0) < required_nodes(200, 0.0015, 3300.0));
    }

    #[test]
    fn minimum_one_node() {
        assert_eq!(required_nodes(1, 0.01, 1e6), 1);
    }

    #[test]
    fn recommend_sorts_by_cost() {
        let plans = recommend(
            &[(&C3_8XLARGE, 0.0015), (&R3_8XLARGE, 0.0024), (&I2_8XLARGE, 0.0026)],
            200,
            3300.0,
        );
        assert_eq!(plans.len(), 3);
        for w in plans.windows(2) {
            assert!(w[0].predicted_cost <= w[1].predicted_cost);
        }
        // As in the paper: the i2 cluster is the most expensive design.
        assert_eq!(plans.last().unwrap().instance, "i2.8xlarge");
    }

    #[test]
    fn plans_meet_deadline_by_construction() {
        let plans = recommend(&[(&C3_8XLARGE, 0.0015)], 200, 3300.0);
        assert!(plans[0].predicted_secs <= 3300.0 + 1e-9);
    }

    #[test]
    fn price_per_workflow_consistency() {
        let plans = recommend(&[(&R3_8XLARGE, 0.0024)], 100, 3300.0);
        let p = &plans[0];
        assert!((p.price_per_workflow * 100.0 - p.predicted_cost).abs() < 1e-9);
    }
}
