//! Dynamic provisioning analysis (the paper's §V.A.3 sketch).
//!
//! DEWE v2's timeout-based recovery "opens the door for dynamic resource
//! provisioning": add workers while many non-blocking jobs are queued,
//! remove them while blocking jobs serialize the workflow. The paper notes
//! this pays off under per-minute billing (GCE) but not per-hour billing
//! (2015 AWS) and leaves it there; this module implements the analysis.

use dewe_simcloud::{BillingModel, CostModel};

/// One scaling step in a dynamic plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleAction {
    /// When, seconds from ensemble start.
    pub at_secs: f64,
    /// Desired active node count from this moment.
    pub nodes: usize,
}

/// A piecewise-constant node-count schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicPlan {
    /// Scaling steps, in time order. The first entry is at `0.0`.
    pub steps: Vec<ScaleAction>,
    /// Total runtime covered by the plan, seconds.
    pub duration_secs: f64,
}

impl DynamicPlan {
    /// A static plan: `nodes` for the whole duration.
    pub fn fixed(nodes: usize, duration_secs: f64) -> Self {
        Self { steps: vec![ScaleAction { at_secs: 0.0, nodes }], duration_secs }
    }

    /// Validate and construct a dynamic plan.
    pub fn new(steps: Vec<ScaleAction>, duration_secs: f64) -> Self {
        assert!(!steps.is_empty(), "plan needs at least one step");
        assert_eq!(steps[0].at_secs, 0.0, "first step must start at 0");
        assert!(
            steps.windows(2).all(|w| w[0].at_secs < w[1].at_secs),
            "steps must be strictly ordered"
        );
        assert!(steps.last().unwrap().at_secs < duration_secs);
        Self { steps, duration_secs }
    }

    /// Node-seconds consumed by the plan.
    pub fn node_seconds(&self) -> f64 {
        let mut total = 0.0;
        for (i, step) in self.steps.iter().enumerate() {
            let end = self.steps.get(i + 1).map_or(self.duration_secs, |s| s.at_secs);
            total += step.nodes as f64 * (end - step.at_secs);
        }
        total
    }

    /// Cost under a billing model. Per-hour billing charges each node's
    /// rental span rounded up to whole hours; per-minute to whole minutes.
    /// Scale-in/scale-out is modeled as each node being rented for one
    /// contiguous span (nodes are retired latest-started first).
    pub fn cost(&self, price_per_hour: f64, billing: BillingModel) -> f64 {
        // Recover per-node rental spans from the step function.
        let mut spans: Vec<(f64, f64)> = Vec::new(); // (start, end)
        let mut active: Vec<f64> = Vec::new(); // start times of active nodes
        for (i, step) in self.steps.iter().enumerate() {
            let t = step.at_secs;
            while active.len() < step.nodes {
                active.push(t);
            }
            while active.len() > step.nodes {
                let start = active.pop().expect("non-empty");
                spans.push((start, t));
            }
            let _ = i;
        }
        for start in active {
            spans.push((start, self.duration_secs));
        }
        let model = CostModel { billing, price_per_hour };
        spans.iter().map(|&(s, e)| model.cost(1, e - s)).sum()
    }
}

/// Compare static vs dynamic plans under both billing models, returning
/// `(hourly_static, hourly_dynamic, minute_static, minute_dynamic)` USD.
pub fn compare_billing(
    static_plan: &DynamicPlan,
    dynamic_plan: &DynamicPlan,
    price_per_hour: f64,
) -> (f64, f64, f64, f64) {
    (
        static_plan.cost(price_per_hour, BillingModel::PerHour),
        dynamic_plan.cost(price_per_hour, BillingModel::PerHour),
        static_plan.cost(price_per_hour, BillingModel::PerMinute),
        dynamic_plan.cost(price_per_hour, BillingModel::PerMinute),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's motivating scenario: scale to 1 node during the blocking
    /// stage (stage 2 is ~40% of the makespan with one core busy).
    fn blocking_aware_plan() -> DynamicPlan {
        DynamicPlan::new(
            vec![
                ScaleAction { at_secs: 0.0, nodes: 4 },    // stage 1
                ScaleAction { at_secs: 1200.0, nodes: 1 }, // stage 2 (blocking)
                ScaleAction { at_secs: 2400.0, nodes: 4 }, // stage 3
            ],
            3000.0,
        )
    }

    #[test]
    fn node_seconds_integrates_steps() {
        let p = blocking_aware_plan();
        // 4*1200 + 1*1200 + 4*600 = 8400
        assert!((p.node_seconds() - 8400.0).abs() < 1e-9);
        let s = DynamicPlan::fixed(4, 3000.0);
        assert!((s.node_seconds() - 12000.0).abs() < 1e-9);
    }

    #[test]
    fn per_minute_billing_rewards_scale_in() {
        let stat = DynamicPlan::fixed(4, 3000.0);
        let dynp = blocking_aware_plan();
        let (h_s, h_d, m_s, m_d) = compare_billing(&stat, &dynp, 1.68);
        // Hourly: all four nodes cross the hour boundary either way -> no
        // saving (the paper's point about charge-by-hour clouds).
        assert!(h_d >= h_s - 1e-9, "hourly dynamic {h_d} vs static {h_s}");
        // Per-minute: the 3 idle nodes during stage 2 stop billing.
        assert!(m_d < m_s, "minute dynamic {m_d} vs static {m_s}");
    }

    #[test]
    fn fixed_plan_hourly_cost_matches_cost_model() {
        let p = DynamicPlan::fixed(10, 600.0);
        assert!((p.cost(6.82, BillingModel::PerHour) - 68.2).abs() < 1e-9);
    }

    #[test]
    fn scale_out_spans_bill_separately() {
        // 2 nodes for 2 h; 2 more for the last hour.
        let p = DynamicPlan::new(
            vec![ScaleAction { at_secs: 0.0, nodes: 2 }, ScaleAction { at_secs: 3600.0, nodes: 4 }],
            7200.0,
        );
        // 2 nodes x 2 h + 2 nodes x 1 h = 6 node-hours.
        assert!((p.cost(1.0, BillingModel::PerHour) - 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "first step")]
    fn plan_must_start_at_zero() {
        let _ = DynamicPlan::new(vec![ScaleAction { at_secs: 5.0, nodes: 1 }], 10.0);
    }

    #[test]
    #[should_panic(expected = "strictly ordered")]
    fn plan_steps_must_be_ordered() {
        let _ = DynamicPlan::new(
            vec![ScaleAction { at_secs: 0.0, nodes: 1 }, ScaleAction { at_secs: 0.0, nodes: 2 }],
            10.0,
        );
    }
}
