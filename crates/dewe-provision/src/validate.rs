//! Closing the provisioning loop: execute a plan and compare prediction
//! against measurement.
//!
//! Eq. 2 is only as good as the converged index it is fed; the paper
//! validates its designs by actually renting the clusters (Fig. 11). This
//! module is that validation step in the simulator: run the target
//! ensemble on the planned cluster and report predicted-vs-measured time,
//! deadline compliance and realized cost.

use std::sync::Arc;

use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_dag::Workflow;
use dewe_simcloud::{ClusterConfig, CostModel, InstanceType, SharedFsKind, StorageConfig};

use crate::sizing::ClusterPlan;

/// Outcome of executing a [`ClusterPlan`].
#[derive(Debug, Clone)]
pub struct PlanValidation {
    /// The plan that was executed.
    pub plan: ClusterPlan,
    /// Measured makespan, seconds.
    pub measured_secs: f64,
    /// `measured / predicted` (1.0 = perfect prediction; < 1 conservative).
    pub accuracy_ratio: f64,
    /// Whether the measured run met the deadline the plan was built for.
    pub met_deadline: bool,
    /// Realized cost under hourly billing, USD.
    pub measured_cost: f64,
    /// Realized price per workflow, USD.
    pub measured_price_per_workflow: f64,
}

/// Execute `plan` for `workflows` replicas of `template` against
/// `deadline_secs`, on a MooseFS-like shared file system (the paper's
/// large-scale setting).
pub fn validate_plan(
    plan: &ClusterPlan,
    itype: &'static InstanceType,
    template: &Arc<Workflow>,
    workflows: usize,
    deadline_secs: f64,
) -> PlanValidation {
    assert_eq!(plan.instance, itype.name, "plan/instance mismatch");
    let wfs: Vec<Arc<Workflow>> = (0..workflows).map(|_| Arc::clone(template)).collect();
    let cluster = ClusterConfig {
        instance: *itype,
        nodes: plan.nodes,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    };
    let report = run_ensemble(&wfs, &SimRunConfig::new(cluster));
    assert!(report.completed, "plan validation run starved");
    let measured_cost =
        CostModel::hourly(itype.price_per_hour).cost(plan.nodes, report.makespan_secs);
    PlanValidation {
        plan: plan.clone(),
        measured_secs: report.makespan_secs,
        accuracy_ratio: report.makespan_secs / plan.predicted_secs,
        met_deadline: report.makespan_secs <= deadline_secs,
        measured_cost,
        measured_price_per_workflow: measured_cost / workflows as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileConfig, Profiler};
    use crate::sizing::recommend;
    use dewe_dag::WorkflowBuilder;
    use dewe_simcloud::C3_8XLARGE;

    fn template() -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("t");
        for i in 0..96 {
            b.job(format!("j{i}"), "t", 2.0).build();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn profiled_plan_validates_within_margin() {
        // Full loop: profile -> index -> Eq. 2 -> execute -> compare.
        let template = template();
        let profiler = Profiler::new(
            Arc::clone(&template),
            ProfileConfig {
                single_node_max_workflows: 2,
                multi_node_workflows: 12,
                multi_node_range: (2, 4),
                shared_fs: SharedFsKind::Nfs,
                per_job_overhead_secs: 0.0,
            },
        );
        let profile = profiler.profile(&C3_8XLARGE);
        let deadline = 120.0;
        let workflows = 48;
        let plans = recommend(&[(&C3_8XLARGE, profile.converged_index)], workflows, deadline);
        let v = validate_plan(&plans[0], &C3_8XLARGE, &template, workflows, deadline);
        assert!(v.met_deadline, "measured {}s vs deadline {deadline}s", v.measured_secs);
        // NFS-profiled index is conservative for a DistFs run: measured
        // should not exceed prediction by more than ~20%.
        assert!(
            v.accuracy_ratio < 1.2,
            "prediction off: measured {} vs predicted {}",
            v.measured_secs,
            v.plan.predicted_secs
        );
        assert!(v.measured_cost > 0.0);
        assert!((v.measured_price_per_workflow * workflows as f64 - v.measured_cost).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "plan/instance mismatch")]
    fn mismatched_instance_is_rejected() {
        let plans = recommend(&[(&dewe_simcloud::R3_8XLARGE, 0.002)], 10, 600.0);
        let _ = validate_plan(&plans[0], &C3_8XLARGE, &template(), 10, 600.0);
    }
}
