//! The profiling harness: small-scale runs that feed the index (§IV.A).

use std::sync::Arc;

use dewe_core::sim::{run_ensemble, SimRunConfig, SubmissionPlan};
use dewe_dag::Workflow;
use dewe_simcloud::{ClusterConfig, InstanceType, SharedFsKind, StorageConfig};

use crate::index::IndexPoint;

/// Profiling campaign configuration.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Workloads for the single-node test: up to this many workflows on one
    /// node (the paper runs 1..=10).
    pub single_node_max_workflows: usize,
    /// Fixed workload for the multi-node test (the paper uses 20).
    pub multi_node_workflows: usize,
    /// Node counts for the multi-node test (the paper uses 2..=6).
    pub multi_node_range: (usize, usize),
    /// Shared FS used in multi-node profiling (the paper profiles on NFS).
    pub shared_fs: SharedFsKind,
    /// Per-job execution overhead passed to the runtime.
    pub per_job_overhead_secs: f64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            single_node_max_workflows: 10,
            multi_node_workflows: 20,
            multi_node_range: (2, 6),
            shared_fs: SharedFsKind::Nfs,
            per_job_overhead_secs: 0.1,
        }
    }
}

/// Results of one profiling campaign on one instance type.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// Instance type profiled.
    pub instance: &'static str,
    /// Single-node (workflows, makespan secs) measurements (Fig. 5a).
    pub single_node: Vec<(usize, f64)>,
    /// Multi-node measurements with the fixed workload (Fig. 5b/5c).
    pub multi_node: Vec<IndexPoint>,
    /// Converged node performance index (input to Eq. 2).
    pub converged_index: f64,
}

/// Runs profiling campaigns with the DEWE v2 simulated runtime.
pub struct Profiler {
    /// The workflow template replicated to form profiling workloads.
    pub template: Arc<Workflow>,
    /// Campaign shape.
    pub config: ProfileConfig,
}

impl Profiler {
    /// Profiler over a workflow template.
    pub fn new(template: Arc<Workflow>, config: ProfileConfig) -> Self {
        Self { template, config }
    }

    /// Profile one instance type: single-node scaling then multi-node
    /// scaling, returning measurements and the converged index.
    pub fn profile(&self, instance: &'static InstanceType) -> ProfileResult {
        let mut single_node = Vec::new();
        for w in 1..=self.config.single_node_max_workflows {
            let secs = self.run(instance, 1, w, StorageConfig::LocalDisk);
            single_node.push((w, secs));
        }
        let mut multi_node = Vec::new();
        let (lo, hi) = self.config.multi_node_range;
        for n in lo..=hi {
            let secs = self.run(
                instance,
                n,
                self.config.multi_node_workflows,
                StorageConfig::Shared(self.config.shared_fs),
            );
            multi_node.push(IndexPoint::new(n, self.config.multi_node_workflows, secs));
        }
        let converged_index = crate::index::converged_index(&multi_node);
        ProfileResult { instance: instance.name, single_node, multi_node, converged_index }
    }

    fn run(
        &self,
        instance: &'static InstanceType,
        nodes: usize,
        workflows: usize,
        storage: StorageConfig,
    ) -> f64 {
        let wfs: Vec<Arc<Workflow>> = (0..workflows).map(|_| Arc::clone(&self.template)).collect();
        let mut cfg = SimRunConfig::new(ClusterConfig { instance: *instance, nodes, storage });
        cfg.submission = SubmissionPlan::Batch;
        cfg.per_job_overhead_secs = self.config.per_job_overhead_secs;
        let report = run_ensemble(&wfs, &cfg);
        assert!(report.completed, "profiling run starved");
        report.makespan_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_dag::WorkflowBuilder;
    use dewe_simcloud::C3_8XLARGE;

    /// A small CPU-bound workflow so profiling runs are fast.
    fn tiny_template() -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("tiny");
        for i in 0..64 {
            b.job(format!("j{i}"), "t", 2.0).build();
        }
        Arc::new(b.finish().unwrap())
    }

    fn fast_config() -> ProfileConfig {
        ProfileConfig {
            single_node_max_workflows: 3,
            // 12 workflows x 64 jobs divide evenly into 64/96/128 slots so
            // wave quantization does not distort the toy index.
            multi_node_workflows: 12,
            multi_node_range: (2, 4),
            shared_fs: SharedFsKind::Nfs,
            per_job_overhead_secs: 0.0,
        }
    }

    #[test]
    fn single_node_times_grow_linearly() {
        let p = Profiler::new(tiny_template(), fast_config());
        let r = p.profile(&C3_8XLARGE);
        assert_eq!(r.single_node.len(), 3);
        // 64 x 2 s per workflow on 32 slots -> ~4 s per workflow.
        let t1 = r.single_node[0].1;
        let t3 = r.single_node[2].1;
        assert!((t3 / t1 - 3.0).abs() < 0.3, "t1={t1} t3={t3}");
    }

    #[test]
    fn multi_node_index_decreases_or_flat() {
        let p = Profiler::new(tiny_template(), fast_config());
        let r = p.profile(&C3_8XLARGE);
        assert_eq!(r.multi_node.len(), 3);
        // CPU-bound toy workload: index should not *increase* with size.
        for w in r.multi_node.windows(2) {
            assert!(w[1].p <= w[0].p * 1.05, "{:?}", r.multi_node);
        }
        assert!(r.converged_index > 0.0);
        assert!(
            r.converged_index <= r.multi_node.iter().map(|p| p.p).fold(f64::MAX, f64::min) + 1e-12
        );
    }
}
