//! Node performance index (paper Eq. 1) and its large-cluster asymptote.

/// One measured point: a cluster of `nodes` ran `workflows` workflows in
/// `secs`, yielding index `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexPoint {
    /// Cluster size.
    pub nodes: usize,
    /// Workflows executed.
    pub workflows: usize,
    /// Execution time, seconds.
    pub secs: f64,
    /// `P = W / (N · T)`.
    pub p: f64,
}

impl IndexPoint {
    /// Build a point from a measurement.
    pub fn new(nodes: usize, workflows: usize, secs: f64) -> Self {
        Self { nodes, workflows, secs, p: node_performance_index(workflows, nodes, secs) }
    }
}

/// The paper's Eq. 1: `P = W / (N * T)` — how much of a workflow one
/// worker node completes per second.
pub fn node_performance_index(workflows: usize, nodes: usize, secs: f64) -> f64 {
    assert!(nodes > 0 && secs > 0.0);
    workflows as f64 / (nodes as f64 * secs)
}

/// Estimate the large-cluster (converged) index from multi-node profiling
/// points (paper Fig. 5c: degradation "gradually converges when the number
/// of worker nodes is greater than 4").
///
/// Fits `p(n) = p_inf + b / n` by least squares over the points and
/// returns `p_inf`, clamped into `(0, min measured p]` — the asymptote can
/// never exceed a measured value since degradation is monotone.
pub fn converged_index(points: &[IndexPoint]) -> f64 {
    assert!(!points.is_empty(), "need at least one profiling point");
    let min_p = points.iter().map(|pt| pt.p).fold(f64::INFINITY, f64::min);
    if points.len() == 1 {
        return min_p;
    }
    // Least squares on p = a + b * x with x = 1/n.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|pt| 1.0 / pt.nodes as f64).sum();
    let sy: f64 = points.iter().map(|pt| pt.p).sum();
    let sxx: f64 = points.iter().map(|pt| (1.0 / pt.nodes as f64).powi(2)).sum();
    let sxy: f64 = points.iter().map(|pt| pt.p / pt.nodes as f64).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return min_p;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    // Guard against pathological fits (non-monotone data).
    a.clamp(min_p * 0.25, min_p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_paper_example() {
        // Table III design: W=200, T=3300 s, c3 index 0.0015 -> N ~ 40.4.
        // Inverting: a 40-node c3 cluster doing 200 workflows in 3300 s has
        // P = 200/(40*3300) = 0.001515.
        let p = node_performance_index(200, 40, 3300.0);
        assert!((p - 0.0015151).abs() < 1e-6);
    }

    #[test]
    fn index_point_carries_p() {
        let pt = IndexPoint::new(4, 20, 2500.0);
        assert!((pt.p - 0.002).abs() < 1e-9);
    }

    #[test]
    fn converged_index_recovers_asymptote() {
        // Synthesize p(n) = 0.0015 + 0.004/n exactly.
        let pts: Vec<IndexPoint> = (2..=6)
            .map(|n| {
                let p = 0.0015 + 0.004 / n as f64;
                // T = W/(N*p)
                IndexPoint::new(n, 20, 20.0 / (n as f64 * p))
            })
            .collect();
        let a = converged_index(&pts);
        assert!((a - 0.0015).abs() < 1e-5, "got {a}");
    }

    #[test]
    fn converged_never_exceeds_minimum_measurement() {
        // Noisy, nearly flat data: clamp to min.
        let pts = vec![
            IndexPoint::new(2, 20, 4000.0),
            IndexPoint::new(3, 20, 2600.0),
            IndexPoint::new(4, 20, 2000.0),
        ];
        let min_p = pts.iter().map(|p| p.p).fold(f64::INFINITY, f64::min);
        assert!(converged_index(&pts) <= min_p + 1e-12);
    }

    #[test]
    fn single_point_falls_back_to_it() {
        let pts = vec![IndexPoint::new(4, 20, 2500.0)];
        assert_eq!(converged_index(&pts), pts[0].p);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        let _ = node_performance_index(1, 0, 10.0);
    }
}
