//! What-if analysis: the cost/deadline frontier.
//!
//! The paper fixes one deadline (55 minutes) and designs clusters for it.
//! A scientist planning a campaign usually wants the whole trade-off
//! curve: *if I can wait twice as long, what does it cost?* This module
//! sweeps deadlines through Eq. 2 and the hourly cost model, yielding the
//! frontier and the cheapest plan per deadline.

use dewe_simcloud::{CostModel, InstanceType};

use crate::sizing::{required_nodes, ClusterPlan};

/// One frontier point: the cheapest plan meeting a deadline.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Deadline, seconds.
    pub deadline_secs: f64,
    /// The winning plan.
    pub plan: ClusterPlan,
}

/// Sweep deadlines and return, per deadline, the cheapest instance-type
/// plan under hourly billing.
///
/// Eq. 2 gives the *minimum* node count for a deadline, but under
/// whole-hour billing that is not always the cheapest cluster: renting a
/// few more nodes can pull the runtime under an hour boundary and drop a
/// whole billed hour per node (the very effect that makes the paper target
/// 55 minutes). For each candidate type, plans are therefore evaluated at
/// the Eq. 2 minimum *and* at the node counts that land exactly within
/// each whole-hour budget not exceeding the deadline, taking the cheapest.
pub fn cost_deadline_frontier(
    candidates: &[(&'static InstanceType, f64)],
    workflows: usize,
    deadlines_secs: &[f64],
) -> Vec<FrontierPoint> {
    assert!(!candidates.is_empty() && workflows > 0);
    deadlines_secs
        .iter()
        .map(|&deadline| {
            let plan = candidates
                .iter()
                .map(|&(itype, index)| billing_aware_plan(itype, index, workflows, deadline))
                .min_by(|a, b| a.predicted_cost.partial_cmp(&b.predicted_cost).unwrap())
                .expect("non-empty candidates");
            FrontierPoint { deadline_secs: deadline, plan }
        })
        .collect()
}

/// The cheapest hourly-billed plan for one instance type meeting a
/// deadline: Eq. 2 sizing evaluated against the deadline itself and every
/// whole-hour budget under it.
pub fn billing_aware_plan(
    itype: &'static InstanceType,
    index: f64,
    workflows: usize,
    deadline_secs: f64,
) -> ClusterPlan {
    assert!(deadline_secs > 0.0);
    let mut targets = vec![deadline_secs];
    let mut hour = 3600.0;
    while hour < deadline_secs {
        targets.push(hour);
        hour += 3600.0;
    }
    targets
        .into_iter()
        .map(|t| plan_for(itype, index, workflows, t))
        .min_by(|a, b| {
            a.predicted_cost
                .partial_cmp(&b.predicted_cost)
                .unwrap()
                .then(a.predicted_secs.partial_cmp(&b.predicted_secs).unwrap())
        })
        .expect("at least the deadline target")
}

fn plan_for(
    itype: &'static InstanceType,
    index: f64,
    workflows: usize,
    deadline_secs: f64,
) -> ClusterPlan {
    let nodes = required_nodes(workflows, index, deadline_secs);
    let predicted_secs = workflows as f64 / (index * nodes as f64);
    let model = CostModel::hourly(itype.price_per_hour);
    let predicted_cost = model.cost(nodes, predicted_secs);
    ClusterPlan {
        instance: itype.name,
        nodes,
        index,
        predicted_secs,
        price_per_hour: itype.price_per_hour * nodes as f64,
        predicted_cost,
        price_per_workflow: predicted_cost / workflows as f64,
    }
}

/// The knee heuristic: the frontier point after which relaxing the
/// deadline further saves less than `min_relative_saving` per step.
/// Returns an index into `frontier`.
pub fn knee(frontier: &[FrontierPoint], min_relative_saving: f64) -> usize {
    assert!(!frontier.is_empty());
    for i in 1..frontier.len() {
        let prev = frontier[i - 1].plan.predicted_cost;
        let cur = frontier[i].plan.predicted_cost;
        if prev <= 0.0 || (prev - cur) / prev < min_relative_saving {
            return i - 1;
        }
    }
    frontier.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewe_simcloud::{C3_8XLARGE, I2_8XLARGE, R3_8XLARGE};

    fn candidates() -> Vec<(&'static InstanceType, f64)> {
        vec![(&C3_8XLARGE, 0.0015), (&R3_8XLARGE, 0.0024), (&I2_8XLARGE, 0.0026)]
    }

    #[test]
    fn frontier_costs_are_nonincreasing() {
        let deadlines: Vec<f64> = (1..=8).map(|h| h as f64 * 1800.0).collect();
        let frontier = cost_deadline_frontier(&candidates(), 200, &deadlines);
        assert_eq!(frontier.len(), 8);
        for w in frontier.windows(2) {
            assert!(
                w[1].plan.predicted_cost <= w[0].plan.predicted_cost + 1e-9,
                "longer deadline must not cost more: {:?} -> {:?}",
                w[0].plan.predicted_cost,
                w[1].plan.predicted_cost
            );
        }
    }

    #[test]
    fn every_frontier_plan_meets_its_deadline() {
        let deadlines = [1800.0, 3300.0, 7200.0];
        for p in cost_deadline_frontier(&candidates(), 200, &deadlines) {
            assert!(p.plan.predicted_secs <= p.deadline_secs + 1e-9);
        }
    }

    #[test]
    fn paper_deadline_picks_c3() {
        // At T = 3300 s the c3 design is the cheapest (Table III / Fig 11c).
        let frontier = cost_deadline_frontier(&candidates(), 200, &[3300.0]);
        assert_eq!(frontier[0].plan.instance, "c3.8xlarge");
    }

    #[test]
    fn knee_detects_plateau() {
        let deadlines: Vec<f64> = (1..=12).map(|h| h as f64 * 1800.0).collect();
        let frontier = cost_deadline_frontier(&candidates(), 200, &deadlines);
        let k = knee(&frontier, 0.05);
        assert!(k < frontier.len());
        // Beyond the knee, savings per step are < 5%.
        if k + 1 < frontier.len() {
            let a = frontier[k].plan.predicted_cost;
            let b = frontier[k + 1].plan.predicted_cost;
            assert!((a - b) / a < 0.05 + 1e-9);
        }
    }

    #[test]
    fn single_deadline_single_candidate() {
        let frontier = cost_deadline_frontier(&[(&C3_8XLARGE, 0.0015)], 50, &[3600.0]);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].plan.instance, "c3.8xlarge");
        assert_eq!(knee(&frontier, 0.1), 0);
    }

    #[test]
    fn billing_aware_plan_beats_naive_eq2_across_hour_boundaries() {
        // Deadline 1.5 h: naive Eq. 2 rents the minimum nodes and bills two
        // hours each; the billing-aware plan rents more nodes, finishes
        // inside one hour, and is cheaper.
        let naive_nodes = crate::sizing::required_nodes(200, 0.0015, 5400.0);
        let naive_secs = 200.0 / (0.0015 * naive_nodes as f64);
        let naive_cost = CostModel::hourly(C3_8XLARGE.price_per_hour).cost(naive_nodes, naive_secs);
        let smart = billing_aware_plan(&C3_8XLARGE, 0.0015, 200, 5400.0);
        assert!(
            smart.predicted_cost < naive_cost,
            "billing-aware {} vs naive {naive_cost}",
            smart.predicted_cost
        );
        assert!(smart.predicted_secs <= 5400.0);
    }
}
