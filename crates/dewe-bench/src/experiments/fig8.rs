//! Figs. 8 & 9: workflow submission intervals.
//!
//! Fig. 8 sweeps the interval between submissions of five workflows on one
//! node (batch = 0 s) and reports the ensemble makespan: staggering
//! overlaps one workflow's serial/IO stages with others' CPU stages, so
//! the curve dips (the paper's optimum: ~100 s, 34% faster than batch)
//! and rises again once the submission delay dominates.
//!
//! Fig. 9 records the CPU / disk-write / disk-read time series at
//! intervals {0, 50, 100} s, showing the three-stage pattern dissolving as
//! the interval grows.
//!
//! The harness also runs the repository's extension: a golden-section
//! auto-tuner that finds the best interval without a manual sweep (the
//! paper leaves "more sophisticated submission strategies" as future
//! work).

use dewe_core::sim::{run_ensemble, SimRunConfig, SubmissionPlan};
use dewe_metrics::csv::table_to_csv;
use dewe_metrics::TimeSeries;
use dewe_simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

use crate::{write_csv, Scale};

/// Fig. 8/9 outputs.
pub struct Fig8Result {
    /// (interval seconds, makespan seconds) sweep.
    pub sweep: Vec<(f64, f64)>,
    /// Best interval found by the sweep.
    pub best_interval: f64,
    /// Relative improvement of the best interval over batch.
    pub gain_over_batch: f64,
    /// Best interval found by the golden-section auto-tuner (extension).
    pub tuned_interval: f64,
    /// Makespan at the tuned interval.
    pub tuned_secs: f64,
}

/// Run the Fig. 8 sweep and Fig. 9 time-series captures.
pub fn run_fig8_fig9(scale: Scale) -> Fig8Result {
    println!("== Fig 8: submission-interval sweep (5 workflows, 1 node) ==");
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };
    let workflows = 5;
    // Quick scale uses proportionally shorter intervals (the workflow is
    // ~9x smaller).
    let unit = match scale {
        Scale::Full => 1.0,
        Scale::Quick => 0.2,
    };
    let intervals: Vec<f64> =
        [0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0].iter().map(|i| i * unit).collect();

    let measure = |interval: f64| -> f64 {
        let wfs = super::ensemble(scale, workflows);
        let mut cfg = SimRunConfig::new(cluster);
        cfg.submission = if interval == 0.0 {
            SubmissionPlan::Batch
        } else {
            SubmissionPlan::Interval(interval)
        };
        let report = run_ensemble(&wfs, &cfg);
        assert!(report.completed);
        report.makespan_secs
    };

    let mut sweep = Vec::new();
    let mut rows = Vec::new();
    for &i in &intervals {
        let t = measure(i);
        println!("interval {i:>6.1}s -> makespan {t:>7.0}s");
        rows.push(vec![format!("{i:.1}"), format!("{t:.1}")]);
        sweep.push((i, t));
    }
    write_csv("fig8.csv", &table_to_csv(&["interval_secs", "makespan_secs"], &rows));

    let batch = sweep[0].1;
    let &(best_interval, best_secs) =
        sweep.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).expect("non-empty sweep");
    let gain = 1.0 - best_secs / batch;
    println!(
        "best interval {best_interval:.0}s: {gain:.1}% faster than batch (paper: 34% at 100 s)",
        gain = gain * 100.0
    );

    // Extension: golden-section auto-tuner over [0, max interval].
    let (tuned_interval, tuned_secs) = golden_section(measure, 0.0, *intervals.last().unwrap(), 6);
    println!("auto-tuned interval: {tuned_interval:.1}s -> {tuned_secs:.0}s");

    // Fig 9: time series at three intervals.
    println!("== Fig 9: resource consumption at intervals 0 / 50 / 100 ==");
    let mut cols: Vec<TimeSeries> = Vec::new();
    for &i in &[0.0, 50.0 * unit, 100.0 * unit] {
        let wfs = super::ensemble(scale, workflows);
        let mut cfg = SimRunConfig::new(cluster);
        cfg.sample = true;
        cfg.submission = if i == 0.0 { SubmissionPlan::Batch } else { SubmissionPlan::Interval(i) };
        let report = run_ensemble(&wfs, &cfg);
        let s = report.sampler.expect("sampling");
        let tag = format!("i{}", i.round() as i64);
        let label = |mut series: TimeSeries, kind: &str| {
            series.name = format!("{tag}_{kind}");
            series
        };
        let cpu = label(s.mean_cpu_util(), "cpu_pct");
        let wr = label(s.total_write_mbps(), "write_mbps");
        let rd = label(s.total_read_mbps(), "read_mbps");
        println!(
            "interval {i:>5.1}s: mean cpu {:>5.1}%  peak write {:>6.0} MB/s  peak read {:>6.0} MB/s",
            cpu.mean(),
            wr.max(),
            rd.max()
        );
        cols.extend([cpu, wr, rd]);
    }
    let refs: Vec<&TimeSeries> = cols.iter().collect();
    write_csv("fig9.csv", &dewe_metrics::csv::series_to_csv(&refs));

    Fig8Result { sweep, best_interval, gain_over_batch: gain, tuned_interval, tuned_secs }
}

/// Golden-section search for the minimizing interval (unimodal assumption,
/// which Fig. 8's U-shape satisfies).
fn golden_section(
    mut f: impl FnMut(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    iters: usize,
) -> (f64, f64) {
    const PHI: f64 = 0.618_033_988_749_894_8;
    let mut x1 = hi - PHI * (hi - lo);
    let mut x2 = lo + PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..iters {
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + PHI * (hi - lo);
            f2 = f(x2);
        }
    }
    if f1 <= f2 {
        (x1, f1)
    } else {
        (x2, f2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_min() {
        let (x, v) = golden_section(|x| (x - 30.0).powi(2) + 1.0, 0.0, 100.0, 20);
        assert!((x - 30.0).abs() < 0.5, "x={x}");
        assert!((v - 1.0).abs() < 0.5);
    }

    #[test]
    fn fig8_shapes() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_f8"));
        let r = run_fig8_fig9(crate::Scale::Quick);
        // An intermediate interval beats batch submission.
        assert!(r.best_interval > 0.0, "batch should not be optimal");
        assert!(r.gain_over_batch > 0.0, "staggering must help: {}", r.gain_over_batch);
        // The tuner lands at or below the sweep's coarse optimum (same
        // neighborhood; tolerance for plateau noise).
        let sweep_best = r.sweep.iter().map(|p| p.1).fold(f64::MAX, f64::min);
        assert!(r.tuned_secs <= sweep_best * 1.05);
    }
}
