//! Fig. 6: one Montage workflow on a single c3.8xlarge — DEWE v2 versus
//! the Pegasus-like baseline: concurrent threads, CPU utilization, disk
//! writes over time.
//!
//! Shapes (paper §V.A.1): DEWE reaches more concurrent threads (25 vs 20)
//! and higher CPU (100% vs 80%); Pegasus writes far more to disk; the
//! baseline's makespan is roughly twice DEWE's (1240 s vs 600 s).

use std::sync::Arc;

use dewe_baseline::{run_ensemble as run_baseline, BaselineConfig};
use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_metrics::TimeSeries;
use dewe_simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

use crate::{write_csv, Scale};

/// Fig. 6 outputs for one engine.
pub struct EngineTrace {
    /// Makespan seconds.
    pub makespan_secs: f64,
    /// Peak concurrent threads.
    pub peak_threads: f64,
    /// Peak CPU utilization (%).
    pub peak_cpu: f64,
    /// Total bytes written.
    pub bytes_written: f64,
    /// Thread count series.
    pub threads: TimeSeries,
    /// CPU utilization series.
    pub cpu: TimeSeries,
    /// Write throughput series.
    pub writes: TimeSeries,
}

/// Fig. 6 outputs.
pub struct Fig6Result {
    /// DEWE v2 trace.
    pub dewe: EngineTrace,
    /// Baseline trace.
    pub pegasus: EngineTrace,
}

/// Run the Fig. 6 reproduction.
pub fn run_fig6(scale: Scale) -> Fig6Result {
    println!("== Fig 6: one workflow, c3.8xlarge — DEWE v2 vs Pegasus ==");
    let wf = super::montage(scale);
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };

    let mut cfg = SimRunConfig::new(cluster);
    cfg.sample = true;
    let d = run_ensemble(&[Arc::clone(&wf)], &cfg);
    assert!(d.completed);
    let ds = d.sampler.expect("sampling");
    let dewe = EngineTrace {
        makespan_secs: d.makespan_secs,
        peak_threads: ds.total_threads().max(),
        peak_cpu: ds.mean_cpu_util().max(),
        bytes_written: d.total_bytes_written,
        threads: ds.total_threads(),
        cpu: ds.mean_cpu_util(),
        writes: ds.total_write_mbps(),
    };

    let mut bcfg = BaselineConfig::new(cluster);
    bcfg.sample = true;
    let p = run_baseline(&[wf], &bcfg);
    assert!(p.completed);
    let ps = p.sampler.expect("sampling");
    let pegasus = EngineTrace {
        makespan_secs: p.makespan_secs,
        peak_threads: ps.total_threads().max(),
        peak_cpu: ps.mean_cpu_util().max(),
        bytes_written: p.total_bytes_written,
        threads: ps.total_threads(),
        cpu: ps.mean_cpu_util(),
        writes: ps.total_write_mbps(),
    };

    for (name, t) in [("DEWE v2", &dewe), ("Pegasus", &pegasus)] {
        println!(
            "{name:<8} makespan {:>6.0}s  peak threads {:>4.0}  peak cpu {:>5.1}%  writes {:>6.1} GB",
            t.makespan_secs,
            t.peak_threads,
            t.peak_cpu,
            t.bytes_written / 1e9
        );
    }
    let label = |mut s: TimeSeries, n: &str| {
        s.name = n.to_string();
        s
    };
    let cols = [
        label(dewe.threads.clone(), "dewe_threads"),
        label(dewe.cpu.clone(), "dewe_cpu_pct"),
        label(dewe.writes.clone(), "dewe_write_mbps"),
        label(pegasus.threads.clone(), "pegasus_threads"),
        label(pegasus.cpu.clone(), "pegasus_cpu_pct"),
        label(pegasus.writes.clone(), "pegasus_write_mbps"),
    ];
    let refs: Vec<&TimeSeries> = cols.iter().collect();
    write_csv("fig6.csv", &dewe_metrics::csv::series_to_csv(&refs));
    Fig6Result { dewe, pegasus }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shapes() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_f6"));
        let r = run_fig6(Scale::Quick);
        // DEWE reaches higher concurrency and CPU.
        assert!(r.dewe.peak_threads > r.pegasus.peak_threads);
        assert!(r.pegasus.peak_threads <= 20.0);
        assert!(r.dewe.peak_cpu > r.pegasus.peak_cpu);
        // Pegasus writes much more.
        assert!(r.pegasus.bytes_written > 1.8 * r.dewe.bytes_written);
        // And takes substantially longer.
        assert!(r.pegasus.makespan_secs > 1.5 * r.dewe.makespan_secs);
    }
}
