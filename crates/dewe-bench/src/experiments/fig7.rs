//! Fig. 7: one to five Montage workflows on a single c3.8xlarge — total
//! execution time, total CPU time and total disk writes, DEWE v2 versus
//! the Pegasus-like baseline.
//!
//! Shapes (paper §V.A.1): all three quantities grow linearly in W for
//! both engines; Pegasus consumes far more CPU and disk; the speed-up of
//! DEWE v2 over Pegasus grows with the number of parallel workflows (the
//! paper reports 80% at W = 5).

use dewe_baseline::{run_ensemble as run_baseline, BaselineConfig};
use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_metrics::csv::table_to_csv;
use dewe_simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

use crate::{write_csv, Scale};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// Number of workflows.
    pub workflows: usize,
    /// DEWE v2 makespan, seconds.
    pub dewe_secs: f64,
    /// Baseline makespan, seconds.
    pub pegasus_secs: f64,
    /// DEWE v2 total CPU core-seconds.
    pub dewe_cpu: f64,
    /// Baseline total CPU core-seconds.
    pub pegasus_cpu: f64,
    /// DEWE v2 total bytes written.
    pub dewe_writes: f64,
    /// Baseline total bytes written.
    pub pegasus_writes: f64,
}

/// Fig. 7 outputs.
pub struct Fig7Result {
    /// Sweep over W = 1..=5.
    pub points: Vec<Fig7Point>,
}

impl Fig7Result {
    /// Speed-up of DEWE over the baseline at the largest W:
    /// `1 - T_dewe / T_pegasus` (the paper's "80% speed-up" metric).
    pub fn speedup_at_max_w(&self) -> f64 {
        let last = self.points.last().expect("nonempty sweep");
        1.0 - last.dewe_secs / last.pegasus_secs
    }
}

/// Run the Fig. 7 reproduction.
pub fn run_fig7(scale: Scale) -> Fig7Result {
    println!("== Fig 7: W = 1..5 workflows — DEWE v2 vs Pegasus totals ==");
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for w in 1..=5 {
        let wfs = super::ensemble(scale, w);
        let d = run_ensemble(&wfs, &SimRunConfig::new(cluster));
        let p = run_baseline(&wfs, &BaselineConfig::new(cluster));
        assert!(d.completed && p.completed);
        let point = Fig7Point {
            workflows: w,
            dewe_secs: d.makespan_secs,
            pegasus_secs: p.makespan_secs,
            dewe_cpu: d.total_cpu_core_secs,
            pegasus_cpu: p.total_cpu_core_secs,
            dewe_writes: d.total_bytes_written,
            pegasus_writes: p.total_bytes_written,
        };
        println!(
            "W={w}: time {:>6.0}s vs {:>6.0}s | cpu {:>7.0} vs {:>7.0} core-s | writes {:>6.1} vs {:>6.1} GB | speedup {:>4.1}%",
            point.dewe_secs,
            point.pegasus_secs,
            point.dewe_cpu,
            point.pegasus_cpu,
            point.dewe_writes / 1e9,
            point.pegasus_writes / 1e9,
            100.0 * (1.0 - point.dewe_secs / point.pegasus_secs),
        );
        rows.push(vec![
            w.to_string(),
            format!("{:.1}", point.dewe_secs),
            format!("{:.1}", point.pegasus_secs),
            format!("{:.0}", point.dewe_cpu),
            format!("{:.0}", point.pegasus_cpu),
            format!("{:.3e}", point.dewe_writes),
            format!("{:.3e}", point.pegasus_writes),
        ]);
        points.push(point);
    }
    write_csv(
        "fig7.csv",
        &table_to_csv(
            &[
                "workflows",
                "dewe_secs",
                "pegasus_secs",
                "dewe_cpu_core_secs",
                "pegasus_cpu_core_secs",
                "dewe_bytes_written",
                "pegasus_bytes_written",
            ],
            &rows,
        ),
    );
    let result = Fig7Result { points };
    println!("speed-up at W=5: {:.0}% (paper: 80%)", 100.0 * result.speedup_at_max_w());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shapes() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_f7"));
        let r = run_fig7(Scale::Quick);
        assert_eq!(r.points.len(), 5);
        // Time grows monotonically in W for both engines. (Strict ~5x
        // linearity only emerges at full scale, where stage 1 dominates;
        // at quick scale the constant blocking stage flattens the slope.)
        for w in r.points.windows(2) {
            assert!(w[1].dewe_secs > w[0].dewe_secs);
            assert!(w[1].pegasus_secs > w[0].pegasus_secs);
        }
        let t1 = r.points[0].dewe_secs;
        let t5 = r.points[4].dewe_secs;
        assert!(t5 / t1 > 1.2 && t5 / t1 < 8.0, "dewe scaling {t1} -> {t5}");
        // Pegasus consumes ~2x CPU and ~2x+ writes at every W.
        for p in &r.points {
            assert!(p.pegasus_cpu > 1.5 * p.dewe_cpu);
            assert!(p.pegasus_writes > 1.8 * p.dewe_writes);
            assert!(p.pegasus_secs > p.dewe_secs);
        }
        // The speed-up grows with W and is substantial at W=5.
        let s1 = 1.0 - r.points[0].dewe_secs / r.points[0].pegasus_secs;
        let s5 = r.speedup_at_max_w();
        assert!(s5 >= s1 - 0.02, "speedup should not shrink: {s1} -> {s5}");
        assert!(s5 > 0.45, "speedup at W=5 too small: {s5}");
    }
}
