//! Coordination-overhead instrumentation: per-job queue waits.
//!
//! The paper's central claim is that the pulling approach "removes
//! scheduling overhead". This experiment measures that overhead directly
//! rather than inferring it from makespans: it traces every job of the
//! same workload through both engines and compares the *eligible →
//! running* latency distribution (how long a job that could run sat
//! waiting for coordination) plus the per-transformation execution-time
//! spread that underpins the homogeneity argument.

use dewe_baseline::{run_ensemble as run_baseline, BaselineConfig};
use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_metrics::csv::table_to_csv;
use dewe_metrics::Summary;
use dewe_simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

use crate::{write_csv, Scale};

/// Overhead experiment outputs.
pub struct OverheadResult {
    /// DEWE queue-wait summary (seconds).
    pub dewe_wait: Summary,
    /// Baseline queue-wait summary (seconds).
    pub pegasus_wait: Summary,
    /// Per-transformation execution summaries (DEWE side), sorted by name.
    pub dewe_xforms: Vec<(String, Summary)>,
}

/// Run the overhead instrumentation on one workflow per engine.
pub fn run_overhead(scale: Scale) -> OverheadResult {
    println!("== Overhead: eligible -> running latency, DEWE v2 vs Pegasus ==");
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };
    let wf = super::montage(scale);

    let mut cfg = SimRunConfig::new(cluster);
    cfg.record_trace = true;
    let d = run_ensemble(&[std::sync::Arc::clone(&wf)], &cfg);
    let d_trace = d.trace.expect("trace requested");
    let dewe_wait = d_trace.queue_wait_summary().expect("jobs ran");

    let mut bcfg = BaselineConfig::new(cluster);
    bcfg.record_trace = true;
    let p = run_baseline(&[wf], &bcfg);
    let p_trace = p.trace.expect("trace requested");
    let pegasus_wait = p_trace.queue_wait_summary().expect("jobs ran");

    for (name, s) in [("DEWE v2", &dewe_wait), ("Pegasus", &pegasus_wait)] {
        println!(
            "{name:<8} queue wait: mean {:>7.2}s  p50 {:>7.2}s  p90 {:>7.2}s  p99 {:>7.2}s  max {:>7.2}s",
            s.mean, s.p50, s.p90, s.p99, s.max
        );
    }

    println!("per-transformation execution spread (DEWE v2):");
    let dewe_xforms = d_trace.per_xform_summary();
    let mut rows = Vec::new();
    for (xform, s) in &dewe_xforms {
        println!("  {xform:<14} n={:<6} mean {:>7.2}s  cv {:>5.2}", s.count, s.mean, s.cv());
        rows.push(vec![
            xform.clone(),
            s.count.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.cv()),
        ]);
    }
    write_csv("overhead_xforms.csv", &table_to_csv(&["xform", "count", "mean_secs", "cv"], &rows));
    write_csv(
        "overhead_waits.csv",
        &table_to_csv(
            &["engine", "mean", "p50", "p90", "p99", "max"],
            &[
                vec![
                    "dewe".into(),
                    format!("{:.3}", dewe_wait.mean),
                    format!("{:.3}", dewe_wait.p50),
                    format!("{:.3}", dewe_wait.p90),
                    format!("{:.3}", dewe_wait.p99),
                    format!("{:.3}", dewe_wait.max),
                ],
                vec![
                    "pegasus".into(),
                    format!("{:.3}", pegasus_wait.mean),
                    format!("{:.3}", pegasus_wait.p50),
                    format!("{:.3}", pegasus_wait.p90),
                    format!("{:.3}", pegasus_wait.p99),
                    format!("{:.3}", pegasus_wait.max),
                ],
            ],
        ),
    );
    OverheadResult { dewe_wait, pegasus_wait, dewe_xforms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulling_has_lower_coordination_latency() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_ov"));
        let r = run_overhead(Scale::Quick);
        // Queue waits exist in both systems (the fan phases oversubscribe
        // the node), but the baseline adds negotiation-cycle latency on
        // top: its median wait must exceed DEWE's.
        assert!(
            r.pegasus_wait.p50 >= r.dewe_wait.p50,
            "baseline p50 {} vs dewe {}",
            r.pegasus_wait.p50,
            r.dewe_wait.p50
        );
        assert!(r.pegasus_wait.mean > r.dewe_wait.mean);
        // Homogeneity: the numerous short transformations have a tight
        // execution spread (CV below ~0.5) in the DEWE trace.
        let proj = r
            .dewe_xforms
            .iter()
            .find(|(x, _)| x == "mProjectPP")
            .map(|(_, s)| s)
            .expect("mProjectPP present");
        assert!(proj.count > 50);
        assert!(proj.cv() < 0.5, "mProjectPP spread too wide: {}", proj.cv());
    }
}
