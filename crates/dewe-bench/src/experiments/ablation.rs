//! Ablations and extensions beyond the paper's figures.
//!
//! 1. **Parallel blocking jobs** (paper §III.D): DEWE v2 deliberately does
//!    not pin jobs to cores so OpenMP-style blocking jobs can use the
//!    whole node; quantify the speed-up as `mConcatFit`/`mBgModel` gain
//!    cores.
//! 2. **Baseline overhead decomposition**: how much of the DEWE-vs-Pegasus
//!    gap comes from each modeled cost (per-job overhead, negotiation
//!    latency, I/O amplification, concurrency cap, planning)?
//! 3. **Scheduling-policy ablation**: least-loaded vs round-robin vs
//!    random matchmaking in the baseline.
//! 4. **Dynamic provisioning** (paper §V.A.3 sketch): scale the cluster in
//!    during the blocking stage; compare hourly vs per-minute billing.
//! 5. **Heterogeneity stress** — the paper's thesis is that pulling wins
//!    *because* cloud nodes are homogeneous; this ablation deliberately
//!    violates that assumption (a grid-like mix of node speeds) and
//!    measures how much a speed-aware scheduler claws back.
//! 6. **Cost/deadline frontier** — billing-aware Eq. 2 sizing swept over
//!    deadlines (what-if analysis for campaign planning).

use std::sync::Arc;

use dewe_baseline::{run_ensemble as run_baseline, BaselineConfig, Policy};
use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_metrics::csv::table_to_csv;
use dewe_montage::MontageConfig;
use dewe_provision::{compare_billing, cost_deadline_frontier, DynamicPlan, ScaleAction};
use dewe_simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

use crate::{write_csv, Scale};

/// Ablation outputs.
pub struct AblationResult {
    /// (blocking job cores, makespan secs).
    pub blocking_cores: Vec<(u32, f64)>,
    /// (knob-removed label, makespan secs) for the baseline decomposition;
    /// first entry is the full baseline, last is all knobs off.
    pub baseline_decomposition: Vec<(String, f64)>,
    /// (policy label, makespan secs).
    pub policies: Vec<(String, f64)>,
    /// (hourly static, hourly dynamic, minute static, minute dynamic) USD.
    pub billing: (f64, f64, f64, f64),
    /// Heterogeneity stress: (scenario label, makespan secs).
    pub heterogeneity: Vec<(String, f64)>,
    /// Cost/deadline frontier points: (deadline secs, instance, nodes,
    /// predicted cost USD).
    pub frontier: Vec<(f64, String, usize, f64)>,
}

/// Run all ablations.
pub fn run_ablation(scale: Scale) -> AblationResult {
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };

    // 1. Parallel blocking jobs.
    println!("== Ablation: OpenMP-style blocking jobs (cores for mConcatFit/mBgModel) ==");
    let mut blocking_cores = Vec::new();
    for cores in [1u32, 2, 4, 8, 16, 32] {
        let wf =
            Arc::new(MontageConfig::degree(scale.degree()).with_blocking_job_cores(cores).build());
        let report = run_ensemble(&[wf], &SimRunConfig::new(cluster));
        println!("  blocking cores {cores:>2}: makespan {:>6.0}s", report.makespan_secs);
        blocking_cores.push((cores, report.makespan_secs));
    }

    // 2. Baseline overhead decomposition: switch each cost off one at a
    //    time (cumulative, most-impactful semantics documented in output).
    println!("== Ablation: baseline overhead decomposition (1 workflow) ==");
    let wf = super::montage(scale);
    let mut baseline_decomposition = Vec::new();
    let mut cfg = BaselineConfig::new(cluster);
    cfg.seed = 42;
    let record = |label: &str, cfg: &BaselineConfig, out: &mut Vec<(String, f64)>| {
        let report = run_baseline(&[Arc::clone(&wf)], cfg);
        println!("  {label:<28} {:>6.0}s", report.makespan_secs);
        out.push((label.to_string(), report.makespan_secs));
    };
    record("full baseline", &cfg, &mut baseline_decomposition);
    cfg.planning_secs_per_workflow = 0.0;
    record("- planning", &cfg, &mut baseline_decomposition);
    cfg.per_job_overhead_secs = 0.0;
    record("- per-job overhead", &cfg, &mut baseline_decomposition);
    cfg.write_amplification = 1.0;
    cfg.read_amplification = 1.0;
    cfg.log_bytes_per_job = 0.0;
    record("- I/O amplification", &cfg, &mut baseline_decomposition);
    cfg.negotiation_interval_secs = 0.1;
    record("- negotiation latency", &cfg, &mut baseline_decomposition);
    cfg.slots_per_node = 32;
    record("- concurrency cap (= DEWE-ish)", &cfg, &mut baseline_decomposition);

    // 3. Scheduling policies at multi-node scale.
    println!("== Ablation: baseline matchmaking policies (4 nodes, 4 workflows) ==");
    let mcluster = ClusterConfig {
        instance: C3_8XLARGE,
        nodes: 4,
        storage: StorageConfig::Shared(dewe_simcloud::SharedFsKind::Nfs),
    };
    let mut policies = Vec::new();
    for (label, policy) in [
        ("least-loaded", Policy::LeastLoaded),
        ("round-robin", Policy::RoundRobin),
        ("random", Policy::Random),
    ] {
        let wfs = super::ensemble(scale, 4);
        let mut cfg = BaselineConfig::new(mcluster);
        cfg.policy = policy;
        let report = run_baseline(&wfs, &cfg);
        println!("  {label:<14} {:>6.0}s", report.makespan_secs);
        policies.push((label.to_string(), report.makespan_secs));
    }

    // 4. Dynamic provisioning billing analysis: a 4-node run that scales
    //    to 1 node during the blocking stage. Stage boundaries from the
    //    structure of a single-workflow run.
    println!("== Extension: dynamic provisioning under hourly vs per-minute billing ==");
    let single = run_ensemble(&[super::montage(scale)], &SimRunConfig::new(cluster));
    let t = single.makespan_secs;
    let static_plan = DynamicPlan::fixed(4, t);
    let dynamic_plan = DynamicPlan::new(
        vec![
            ScaleAction { at_secs: 0.0, nodes: 4 },
            ScaleAction { at_secs: t * 0.45, nodes: 1 }, // blocking stage
            ScaleAction { at_secs: t * 0.80, nodes: 4 }, // stage 3
        ],
        t,
    );
    let billing = compare_billing(&static_plan, &dynamic_plan, C3_8XLARGE.price_per_hour);
    println!(
        "  hourly: static ${:.2} vs dynamic ${:.2} | per-minute: static ${:.2} vs dynamic ${:.2}",
        billing.0, billing.1, billing.2, billing.3
    );

    // 5. Heterogeneity stress: a 4-node "grid" with speeds 0.4/0.7/1.0/1.6
    //    running 4 workflows. Pulling (speed-blind FCFS) vs a lean
    //    scheduling baseline with and without speed knowledge.
    println!("== Ablation: heterogeneous cluster (speeds 0.4/0.7/1.0/1.6) ==");
    let speeds = vec![0.4, 0.7, 1.0, 1.6];
    let hcluster = ClusterConfig {
        instance: C3_8XLARGE,
        nodes: 4,
        storage: StorageConfig::Shared(dewe_simcloud::SharedFsKind::DistFs),
    };
    let mut heterogeneity = Vec::new();
    {
        let wfs = super::ensemble(scale, 4);
        let mut cfg = SimRunConfig::new(hcluster);
        cfg.per_job_overhead_secs = 0.0;
        cfg.node_speed_factors = Some(speeds.clone());
        let r = run_ensemble(&wfs, &cfg);
        println!("  DEWE v2 (pull, speed-blind)   {:>6.0}s", r.makespan_secs);
        heterogeneity.push(("dewe_pull".to_string(), r.makespan_secs));
    }
    for (label, policy) in
        [("least-loaded", Policy::LeastLoaded), ("fastest-first", Policy::FastestFirst)]
    {
        let wfs = super::ensemble(scale, 4);
        // Lean baseline: no Pegasus overheads, so the comparison isolates
        // the *policy* value of speed awareness.
        let mut cfg = BaselineConfig::new(hcluster);
        cfg.per_job_overhead_secs = 0.0;
        cfg.write_amplification = 1.0;
        cfg.read_amplification = 1.0;
        cfg.log_bytes_per_job = 0.0;
        cfg.planning_secs_per_workflow = 0.0;
        cfg.negotiation_interval_secs = 0.5;
        cfg.slots_per_node = 32;
        cfg.policy = policy;
        cfg.node_speed_factors = Some(speeds.clone());
        let r = run_baseline(&wfs, &cfg);
        println!("  lean scheduler ({label:<13}) {:>6.0}s", r.makespan_secs);
        heterogeneity.push((format!("sched_{label}"), r.makespan_secs));
    }

    // 6. Cost/deadline frontier (billing-aware Eq. 2).
    println!("== Extension: cost/deadline frontier (W=200, paper indexes) ==");
    let deadlines: Vec<f64> = (1..=6).map(|k| k as f64 * 1800.0).collect();
    let frontier_points = cost_deadline_frontier(
        &[
            (&dewe_simcloud::C3_8XLARGE, 0.0015),
            (&dewe_simcloud::R3_8XLARGE, 0.0024),
            (&dewe_simcloud::I2_8XLARGE, 0.0026),
        ],
        200,
        &deadlines,
    );
    let mut frontier = Vec::new();
    for p in &frontier_points {
        println!(
            "  deadline {:>5.0}s -> {:<12} x{:<3} ${:>7.2}",
            p.deadline_secs, p.plan.instance, p.plan.nodes, p.plan.predicted_cost
        );
        frontier.push((
            p.deadline_secs,
            p.plan.instance.to_string(),
            p.plan.nodes,
            p.plan.predicted_cost,
        ));
    }

    let rows: Vec<Vec<String>> =
        blocking_cores.iter().map(|(c, s)| vec![c.to_string(), format!("{s:.1}")]).collect();
    write_csv("ablation_blocking_cores.csv", &table_to_csv(&["cores", "makespan_secs"], &rows));
    let rows: Vec<Vec<String>> =
        baseline_decomposition.iter().map(|(l, s)| vec![l.clone(), format!("{s:.1}")]).collect();
    write_csv("ablation_baseline.csv", &table_to_csv(&["config", "makespan_secs"], &rows));
    let rows: Vec<Vec<String>> =
        heterogeneity.iter().map(|(l, s)| vec![l.clone(), format!("{s:.1}")]).collect();
    write_csv("ablation_heterogeneity.csv", &table_to_csv(&["engine", "makespan_secs"], &rows));
    let rows: Vec<Vec<String>> = frontier
        .iter()
        .map(|(d, i, n, c)| vec![format!("{d:.0}"), i.clone(), n.to_string(), format!("{c:.2}")])
        .collect();
    write_csv(
        "ablation_frontier.csv",
        &table_to_csv(&["deadline_secs", "instance", "nodes", "cost_usd"], &rows),
    );

    AblationResult {
        blocking_cores,
        baseline_decomposition,
        policies,
        billing,
        heterogeneity,
        frontier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shapes() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_ab"));
        let r = run_ablation(Scale::Quick);
        // More cores for blocking jobs -> shorter makespan, monotonically.
        for w in r.blocking_cores.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-6,
                "blocking-core speedup must be monotone: {:?}",
                r.blocking_cores
            );
        }
        assert!(
            r.blocking_cores.last().unwrap().1 < r.blocking_cores[0].1,
            "32-core blocking jobs must beat serial ones"
        );
        // Each removed baseline cost shortens (or keeps) the makespan.
        for w in r.baseline_decomposition.windows(2) {
            assert!(
                w[1].1 <= w[0].1 * 1.02,
                "removing overhead should not slow the baseline: {:?}",
                r.baseline_decomposition
            );
        }
        // Per-minute billing rewards the scale-in; hourly does not.
        let (h_s, h_d, m_s, m_d) = r.billing;
        assert!(m_d < m_s);
        assert!(h_d >= h_s - 1e-9);
        // All policies completed with sane times.
        assert_eq!(r.policies.len(), 3);
        // Heterogeneity: the speed-aware scheduler must not lose to the
        // speed-blind one, and the frontier is populated and nonincreasing.
        let get = |l: &str| r.heterogeneity.iter().find(|(k, _)| k == l).map(|(_, v)| *v).unwrap();
        assert!(get("sched_fastest-first") <= get("sched_least-loaded") * 1.02);
        assert_eq!(r.frontier.len(), 6);
        for w in r.frontier.windows(2) {
            assert!(w[1].3 <= w[0].3 + 1e-9, "frontier must be nonincreasing");
        }
    }
}
