//! Fig. 11: large-scale evaluation of the provisioning strategy — four
//! clusters (c3 x 40, r3 x 25, i2 x 23 designed by Eq. 2; plus
//! "i2.8xlarge B" x 10 as an undesigned comparison at roughly the same
//! hourly price), ensembles of 25..200 workflows.
//!
//! Shapes (paper §V.B):
//! * (a) execution time linear in W on every cluster; the three designed
//!   clusters finish W = 200 within the hour, i2.8xlarge B far exceeds it;
//! * (b) the node performance index grows toward the design index as the
//!   cluster fills; the small i2 B cluster shows the highest index;
//! * (c) under hourly billing the price per workflow falls with W for the
//!   designed clusters, and at W = 200 the designed clusters beat
//!   i2.8xlarge B.

use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_metrics::csv::table_to_csv;
use dewe_simcloud::{
    ClusterConfig, CostModel, InstanceType, SharedFsKind, StorageConfig, C3_8XLARGE, I2_8XLARGE,
    R3_8XLARGE,
};

use crate::{write_csv, Scale};

/// One (cluster, workload) measurement.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// Cluster label (e.g. `i2.8xlarge B`).
    pub cluster: String,
    /// Node count.
    pub nodes: usize,
    /// Ensemble size.
    pub workflows: usize,
    /// Makespan, seconds.
    pub secs: f64,
    /// Node performance index `W/(N*T)`.
    pub index: f64,
    /// Price per workflow under hourly billing, USD.
    pub price_per_workflow: f64,
}

/// Fig. 11 outputs.
pub struct Fig11Result {
    /// All sweep points.
    pub points: Vec<Fig11Point>,
    /// Deadline used (seconds).
    pub deadline_secs: f64,
}

impl Fig11Result {
    /// Points of one cluster, in workload order.
    pub fn cluster(&self, label: &str) -> Vec<&Fig11Point> {
        self.points.iter().filter(|p| p.cluster == label).collect()
    }

    /// Makespan at the largest workload for a cluster.
    pub fn final_secs(&self, label: &str) -> f64 {
        self.cluster(label).last().expect("cluster measured").secs
    }

    /// Price per workflow at the largest workload.
    pub fn final_price(&self, label: &str) -> f64 {
        self.cluster(label).last().expect("cluster measured").price_per_workflow
    }
}

/// Run the Fig. 11 reproduction.
pub fn run_fig11(scale: Scale) -> Fig11Result {
    // The paper designs for the largest ensemble within a one-hour bill;
    // quick scale shrinks both the mosaics and cluster/ensemble sizes.
    type Setup = (Vec<(&'static str, InstanceType, usize)>, Vec<usize>, f64);
    let (clusters, workloads, deadline): Setup = match scale {
        Scale::Full => (
            vec![
                ("c3.8xlarge", C3_8XLARGE, 40),
                ("r3.8xlarge", R3_8XLARGE, 25),
                ("i2.8xlarge", I2_8XLARGE, 23),
                ("i2.8xlarge B", I2_8XLARGE, 10),
            ],
            vec![25, 50, 100, 150, 200],
            3600.0,
        ),
        Scale::Quick => (
            vec![
                ("c3.8xlarge", C3_8XLARGE, 8),
                ("r3.8xlarge", R3_8XLARGE, 5),
                ("i2.8xlarge", I2_8XLARGE, 5),
                ("i2.8xlarge B", I2_8XLARGE, 2),
            ],
            vec![10, 20, 40],
            // Quick mosaics are ~9x smaller; a 10-minute "deadline"
            // separates the designed clusters (which meet it) from the
            // undersized i2 B cluster (which does not), preserving the
            // figure's point.
            600.0,
        ),
    };

    println!("== Fig 11: large-scale provisioning evaluation ==");
    // The sweep's (cluster x workload) cells are independent simulations;
    // run them on scoped threads and print in deterministic order after
    // the barrier (each cell is itself fully deterministic).
    let cells: Vec<(usize, &(&str, InstanceType, usize), usize)> = clusters
        .iter()
        .flat_map(|c| workloads.iter().map(move |&w| (0usize, c, w)))
        .enumerate()
        .map(|(i, (_, c, w))| (i, c, w))
        .collect();
    let mut cell_results: Vec<Option<Fig11Point>> = (0..cells.len()).map(|_| None).collect();
    let parallelism = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut cell_results);
    std::thread::scope(|scope| {
        for _ in 0..parallelism {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let (idx, (label, itype, nodes), w) = cells[i];
                let wfs = super::ensemble(scale, w);
                let cluster = ClusterConfig {
                    instance: *itype,
                    nodes: *nodes,
                    storage: StorageConfig::Shared(SharedFsKind::DistFs),
                };
                let report = run_ensemble(&wfs, &SimRunConfig::new(cluster));
                assert!(report.completed, "{label} W={w} starved");
                let index = w as f64 / (*nodes as f64 * report.makespan_secs);
                let price = CostModel::hourly(itype.price_per_hour).price_per_workflow(
                    *nodes,
                    report.makespan_secs,
                    w,
                );
                let point = Fig11Point {
                    cluster: label.to_string(),
                    nodes: *nodes,
                    workflows: w,
                    secs: report.makespan_secs,
                    index,
                    price_per_workflow: price,
                };
                results_mutex.lock().expect("no poisoning")[idx] = Some(point);
            });
        }
    });
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for p in cell_results.into_iter().map(|p| p.expect("cell computed")) {
        println!(
            "{:<13} W={:<4} T={:>7.0}s ({:>5.1} min)  P={:.5}  $/wf={:.3}",
            p.cluster,
            p.workflows,
            p.secs,
            p.secs / 60.0,
            p.index,
            p.price_per_workflow
        );
        rows.push(vec![
            p.cluster.clone(),
            p.nodes.to_string(),
            p.workflows.to_string(),
            format!("{:.1}", p.secs),
            format!("{:.6}", p.index),
            format!("{:.4}", p.price_per_workflow),
        ]);
        points.push(p);
    }
    write_csv(
        "fig11.csv",
        &table_to_csv(
            &["cluster", "nodes", "workflows", "secs", "index", "price_per_workflow"],
            &rows,
        ),
    );
    Fig11Result { points, deadline_secs: deadline }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_shapes() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_f11"));
        let r = run_fig11(Scale::Quick);

        // (a) linear-ish growth in W on every cluster, and the designed
        // clusters meet the deadline at max W while i2 B blows through it.
        for label in ["c3.8xlarge", "r3.8xlarge", "i2.8xlarge", "i2.8xlarge B"] {
            let pts = r.cluster(label);
            for w in pts.windows(2) {
                assert!(w[1].secs > w[0].secs, "{label}: time must grow with W");
            }
        }
        for label in ["c3.8xlarge", "r3.8xlarge", "i2.8xlarge"] {
            assert!(
                r.final_secs(label) <= r.deadline_secs,
                "{label} misses the deadline: {}s",
                r.final_secs(label)
            );
        }
        assert!(
            r.final_secs("i2.8xlarge B") > r.deadline_secs,
            "i2 B should exceed the deadline: {}s vs {}s",
            r.final_secs("i2.8xlarge B"),
            r.deadline_secs
        );

        // (b) the small undesigned cluster has the highest index at max W.
        let idx = |l: &str| r.cluster(l).last().unwrap().index;
        assert!(idx("i2.8xlarge B") >= idx("i2.8xlarge"));

        // (c) price per workflow decreases with W for designed clusters
        // (same bill, more work).
        for label in ["c3.8xlarge", "r3.8xlarge"] {
            let pts = r.cluster(label);
            assert!(
                pts.last().unwrap().price_per_workflow < pts[0].price_per_workflow,
                "{label}: price per workflow should fall with W"
            );
        }
    }
}
