//! Fig. 4: resource consumption of ten Montage workflows on a single node
//! of each instance type — CPU utilization, disk writes, disk reads over
//! time, sampled every 3 s.
//!
//! Shapes to reproduce (paper §IV.A):
//! * stage 1 is CPU-bound: ~100% utilization on *all three* types and
//!   roughly equal stage-1 duration despite very different disk speeds;
//! * stage 2 is neither CPU- nor I/O-intensive;
//! * stage 3 is I/O-bound: the types finish in disk-speed order
//!   (i2 first, then r3, then c3).

use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_metrics::TimeSeries;
use dewe_simcloud::{
    ClusterConfig, InstanceType, StorageConfig, C3_8XLARGE, I2_8XLARGE, R3_8XLARGE,
};

use crate::{write_csv, Scale};

/// Per-type series and summary.
pub struct Fig4Result {
    /// (instance name, makespan secs, cpu%, write MB/s, read MB/s series).
    pub per_type: Vec<(String, f64, TimeSeries, TimeSeries, TimeSeries)>,
}

impl Fig4Result {
    /// Makespan by instance name.
    pub fn makespan(&self, name: &str) -> f64 {
        self.per_type.iter().find(|t| t.0 == name).map(|t| t.1).expect("known type")
    }
}

/// Run the Fig. 4 reproduction.
pub fn run_fig4(scale: Scale) -> Fig4Result {
    println!("== Fig 4: ten workflows, single node, three instance types ==");
    // Quick scale uses more of the small mosaics so the ensemble still
    // exceeds the page cache — the stage-3 read-bound behaviour the figure
    // is about only exists past cache capacity.
    let workflows = match scale {
        Scale::Full => 10,
        Scale::Quick => 24,
    };
    let mut per_type = Vec::new();
    let mut csv_series: Vec<TimeSeries> = Vec::new();
    for itype in [C3_8XLARGE, R3_8XLARGE, I2_8XLARGE] {
        let (makespan, cpu, wr, rd) = run_one(scale, itype, workflows);
        println!(
            "{:<12} makespan {:>6.0}s  peak cpu {:>5.1}%  peak write {:>7.0} MB/s  peak read {:>7.0} MB/s",
            itype.name,
            makespan,
            cpu.max(),
            wr.max(),
            rd.max()
        );
        let mut named = |mut s: TimeSeries, kind: &str| {
            s.name = format!("{}_{kind}", itype.name.replace('.', "_"));
            csv_series.push(s.clone());
            s
        };
        let cpu = named(cpu, "cpu_pct");
        let wr = named(wr, "write_mbps");
        let rd = named(rd, "read_mbps");
        per_type.push((itype.name.to_string(), makespan, cpu, wr, rd));
    }
    let refs: Vec<&TimeSeries> = csv_series.iter().collect();
    write_csv("fig4.csv", &dewe_metrics::csv::series_to_csv(&refs));
    Fig4Result { per_type }
}

fn run_one(
    scale: Scale,
    itype: InstanceType,
    workflows: usize,
) -> (f64, TimeSeries, TimeSeries, TimeSeries) {
    let wfs = super::ensemble(scale, workflows);
    let cluster = ClusterConfig { instance: itype, nodes: 1, storage: StorageConfig::LocalDisk };
    let mut cfg = SimRunConfig::new(cluster);
    cfg.sample = true;
    let report = run_ensemble(&wfs, &cfg);
    assert!(report.completed, "{} run starved", itype.name);
    let sampler = report.sampler.expect("sampling on");
    (
        report.makespan_secs,
        sampler.mean_cpu_util(),
        sampler.total_write_mbps(),
        sampler.total_read_mbps(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_f4"));
        let r = run_fig4(Scale::Quick);
        // Finish order tracks disk capability: i2 <= r3 <= c3.
        let c3 = r.makespan("c3.8xlarge");
        let r3 = r.makespan("r3.8xlarge");
        let i2 = r.makespan("i2.8xlarge");
        assert!(i2 <= r3 + 1.0 && r3 <= c3 + 1.0, "c3={c3} r3={r3} i2={i2}");
        // Stage 1 is CPU-bound on every type: all reach ~100% CPU.
        for (name, _, cpu, _, _) in &r.per_type {
            assert!(cpu.max() > 95.0, "{name} peak cpu {}", cpu.max());
        }
        // Stage 3 is I/O-bound: reads appear late in the run. Check that
        // most read volume happens in the second half on c3.
        let (_, makespan, _, _, rd) = &r.per_type[0];
        let half = makespan / 2.0;
        let early: f64 = rd.points.iter().filter(|p| p.0 <= half).map(|p| p.1).sum();
        let late: f64 = rd.points.iter().filter(|p| p.0 > half).map(|p| p.1).sum();
        assert!(late > early, "reads should concentrate in stage 3: early={early} late={late}");
    }
}
