//! Fig. 5: impact of workload and cluster size — (a) single-node scaling
//! in W, (b) multi-node scaling in N at fixed W, (c) node performance
//! index degradation and convergence.
//!
//! This is the paper's profiling campaign (§IV.A/B); the converged indexes
//! it produces feed Eq. 2 and Table III.

use dewe_metrics::csv::table_to_csv;
use dewe_provision::{ProfileConfig, ProfileResult, Profiler};
use dewe_simcloud::{InstanceType, SharedFsKind, C3_8XLARGE, I2_8XLARGE, R3_8XLARGE};

use crate::{write_csv, Scale};

/// Fig. 5 outputs: one profile per instance type.
pub struct Fig5Result {
    /// Profiling results in catalog order (c3, r3, i2).
    pub profiles: Vec<ProfileResult>,
}

impl Fig5Result {
    /// Converged node performance index by instance name.
    pub fn index(&self, name: &str) -> f64 {
        self.profiles.iter().find(|p| p.instance == name).expect("known type").converged_index
    }
}

/// Run the Fig. 5 reproduction.
pub fn run_fig5(scale: Scale) -> Fig5Result {
    println!("== Fig 5: workload & cluster-size scaling (profiling campaign) ==");
    let template = super::montage(scale);
    let config = ProfileConfig {
        single_node_max_workflows: scale.workflows(10),
        multi_node_workflows: scale.workflows(20),
        multi_node_range: (2, 6),
        shared_fs: SharedFsKind::Nfs,
        per_job_overhead_secs: 0.1,
    };
    let types: [&'static InstanceType; 3] = [&C3_8XLARGE, &R3_8XLARGE, &I2_8XLARGE];
    let mut profiles = Vec::new();
    let mut rows_a = Vec::new();
    let mut rows_bc = Vec::new();
    for itype in types {
        let profiler = Profiler::new(std::sync::Arc::clone(&template), config.clone());
        let p = profiler.profile(itype);
        println!("-- {} --", itype.name);
        for &(w, t) in &p.single_node {
            println!("  (a) 1 node, W={w:<3} T={t:>7.0}s");
            rows_a.push(vec![itype.name.to_string(), w.to_string(), format!("{t:.1}")]);
        }
        for pt in &p.multi_node {
            println!(
                "  (b/c) N={:<2} W={:<3} T={:>7.0}s  P={:.5}",
                pt.nodes, pt.workflows, pt.secs, pt.p
            );
            rows_bc.push(vec![
                itype.name.to_string(),
                pt.nodes.to_string(),
                pt.workflows.to_string(),
                format!("{:.1}", pt.secs),
                format!("{:.6}", pt.p),
            ]);
        }
        println!("  converged index: {:.5}", p.converged_index);
        profiles.push(p);
    }
    write_csv("fig5a.csv", &table_to_csv(&["instance", "workflows", "secs"], &rows_a));
    write_csv(
        "fig5bc.csv",
        &table_to_csv(&["instance", "nodes", "workflows", "secs", "index"], &rows_bc),
    );
    Fig5Result { profiles }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shapes() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_f5"));
        let r = run_fig5(Scale::Quick);
        for p in &r.profiles {
            // (a) time grows (roughly linearly) with workload.
            let first = p.single_node.first().unwrap().1;
            let last = p.single_node.last().unwrap().1;
            let w_ratio =
                p.single_node.last().unwrap().0 as f64 / p.single_node.first().unwrap().0 as f64;
            assert!(last > first, "{}: single-node time must grow", p.instance);
            let t_ratio = last / first;
            assert!(
                t_ratio > 0.5 * w_ratio && t_ratio < 1.8 * w_ratio,
                "{}: scaling far from linear: t x{t_ratio:.2} for w x{w_ratio:.2}",
                p.instance
            );
            // (b) more nodes -> faster (monotone non-increasing time).
            for w in p.multi_node.windows(2) {
                assert!(
                    w[1].secs <= w[0].secs * 1.02,
                    "{}: time increased with nodes: {:?}",
                    p.instance,
                    p.multi_node
                );
            }
            // (c) index decreases with cluster size and the asymptote is
            // at or below the last measurement.
            let first_p = p.multi_node.first().unwrap().p;
            let last_p = p.multi_node.last().unwrap().p;
            assert!(last_p <= first_p * 1.02, "{}: index must degrade", p.instance);
            assert!(p.converged_index <= last_p + 1e-9);
            assert!(p.converged_index > 0.0);
        }
    }
}
