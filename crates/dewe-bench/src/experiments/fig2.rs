//! Fig. 2: per-vCPU timeline of one Montage workflow on 4 m3.2xlarge
//! nodes (the paper's motivation run, executed with DEWE v1).
//!
//! We run the workflow with DEWE v2's runtime over NFS on four m3.2xlarge
//! nodes and render the per-slot compute/staging gantt. The features the
//! paper points at must be visible: a three-stage progress pattern, a long
//! serial stage 2 (~40% of makespan with one busy core), and staging gaps
//! on every node.

use std::sync::Arc;

use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_simcloud::{ClusterConfig, SharedFsKind, StorageConfig, M3_2XLARGE};

use crate::{write_csv, Scale};

/// Fig. 2 outputs.
pub struct Fig2Result {
    /// Workflow makespan, seconds.
    pub makespan_secs: f64,
    /// Fraction of the makespan spent in the serial stage (level-width-1
    /// window), the paper's "approximately 40%".
    pub serial_fraction: f64,
    /// Total compute vs staging seconds across jobs.
    pub compute_secs: f64,
    /// Total staging (communication) seconds across jobs.
    pub staging_secs: f64,
    /// ASCII rendering of the per-slot timeline.
    pub ascii: String,
}

/// Run the Fig. 2 reproduction.
pub fn run_fig2(scale: Scale) -> Fig2Result {
    println!("== Fig 2: 1 workflow on 4 x m3.2xlarge, per-vCPU timeline ==");
    let wf = super::montage(scale);
    let cluster = ClusterConfig {
        instance: M3_2XLARGE,
        nodes: 4,
        storage: StorageConfig::Shared(SharedFsKind::Nfs),
    };
    let mut cfg = SimRunConfig::new(cluster);
    cfg.record_gantt = true;
    cfg.sample = true;
    let report = run_ensemble(&[Arc::clone(&wf)], &cfg);
    assert!(report.completed);
    let gantt = report.gantt.expect("gantt requested");

    // Serial-stage fraction: sim-seconds during which at most 2 of the 32
    // slots are busy (mConcatFit -> mBgModel window), from the thread
    // samples.
    let sampler = report.sampler.expect("sampling requested");
    let threads = sampler.total_threads();
    let serial_samples = threads.points.iter().filter(|&&(_, v)| (1.0..=2.0).contains(&v)).count();
    let active_samples = threads.points.iter().filter(|&&(_, v)| v >= 1.0).count();
    let serial_fraction = serial_samples as f64 / active_samples.max(1) as f64;

    let ascii = gantt.render_ascii(100);
    println!("{ascii}");
    println!(
        "makespan {:.0}s; serial stage ~{:.0}% of active time; compute {:.0}s vs staging {:.0}s",
        report.makespan_secs,
        serial_fraction * 100.0,
        gantt.total_compute_secs(),
        gantt.total_staging_secs(),
    );
    let cpu = sampler.mean_cpu_util();
    write_csv("fig2_threads.csv", &dewe_metrics::csv::series_to_csv(&[&threads, &cpu]));
    Fig2Result {
        makespan_secs: report.makespan_secs,
        serial_fraction,
        compute_secs: gantt.total_compute_secs(),
        staging_secs: gantt.total_staging_secs(),
        ascii,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shows_three_stage_pattern() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_f2"));
        let r = run_fig2(Scale::Quick);
        // The serial stage must be a substantial fraction of the run
        // (paper: ~40% for 6.0 degrees on faster nodes).
        assert!(r.serial_fraction > 0.15, "serial fraction {}", r.serial_fraction);
        assert!(r.compute_secs > 0.0);
        assert!(r.staging_secs > 0.0, "NFS runs must show staging gaps");
        assert!(r.ascii.contains("node 3"), "all four nodes rendered");
    }
}
