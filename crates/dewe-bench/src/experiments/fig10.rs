//! Fig. 10: 200 Montage workflows on a 25-node r3.8xlarge cluster with a
//! distributed file system — per-node resource consumption.
//!
//! The paper shows three of the 25 nodes and argues the workload is evenly
//! distributed: every node shows the same CPU/read/write pattern, "the
//! cluster behaves in a way that is similar to a supercomputer". The
//! reproduction measures cross-node dispersion explicitly.

use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_metrics::TimeSeries;
use dewe_simcloud::{ClusterConfig, SharedFsKind, StorageConfig, R3_8XLARGE};

use crate::{write_csv, Scale};

/// Fig. 10 outputs.
pub struct Fig10Result {
    /// Ensemble makespan, seconds.
    pub makespan_secs: f64,
    /// Per-node total CPU busy core-seconds.
    pub per_node_cpu: Vec<f64>,
    /// Coefficient of variation of per-node CPU work (evenness metric).
    pub cpu_cv: f64,
    /// Three sampled nodes' CPU series (as the paper displays).
    pub sample_nodes_cpu: Vec<TimeSeries>,
}

/// Run the Fig. 10 reproduction.
pub fn run_fig10(scale: Scale) -> Fig10Result {
    let (workflows, nodes) = match scale {
        Scale::Full => (200, 25),
        Scale::Quick => (24, 5),
    };
    println!("== Fig 10: {workflows} workflows on {nodes} x r3.8xlarge (distributed FS) ==");
    let wfs = super::ensemble(scale, workflows);
    let cluster = ClusterConfig {
        instance: R3_8XLARGE,
        nodes,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    };
    let mut cfg = SimRunConfig::new(cluster);
    cfg.sample = true;
    let report = run_ensemble(&wfs, &cfg);
    assert!(report.completed);
    let sampler = report.sampler.expect("sampling");

    // Per-node CPU totals from the per-node series (integral of util).
    let per_node_cpu: Vec<f64> = sampler
        .node_series()
        .iter()
        .map(|n| n.cpu_util.integrate() / 100.0 * R3_8XLARGE.vcpus as f64)
        .collect();
    let mean = per_node_cpu.iter().sum::<f64>() / per_node_cpu.len() as f64;
    let var =
        per_node_cpu.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / per_node_cpu.len() as f64;
    let cv = var.sqrt() / mean;

    println!(
        "makespan {:.0}s ({:.0} min); per-node CPU work mean {:.0} core-s, CV {:.3}",
        report.makespan_secs,
        report.makespan_secs / 60.0,
        mean,
        cv
    );

    // Export three nodes' series (first, middle, last), as the paper does.
    let picks = [0, nodes / 2, nodes - 1];
    let mut cols: Vec<TimeSeries> = Vec::new();
    let mut sample_nodes_cpu = Vec::new();
    for &n in &picks {
        let series = &sampler.node_series()[n];
        let label = |mut s: TimeSeries, kind: &str| {
            s.name = format!("node{n}_{kind}");
            s
        };
        let cpu = label(series.cpu_util.clone(), "cpu_pct");
        sample_nodes_cpu.push(cpu.clone());
        cols.push(cpu);
        cols.push(label(series.write_mbps.clone(), "write_mbps"));
        cols.push(label(series.read_mbps.clone(), "read_mbps"));
    }
    let refs: Vec<&TimeSeries> = cols.iter().collect();
    write_csv("fig10.csv", &dewe_metrics::csv::series_to_csv(&refs));

    Fig10Result { makespan_secs: report.makespan_secs, per_node_cpu, cpu_cv: cv, sample_nodes_cpu }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_even_distribution() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_f10"));
        let r = run_fig10(Scale::Quick);
        // Pull-based FCFS spreads work evenly: CPU-work CV small.
        assert!(r.cpu_cv < 0.05, "uneven distribution, CV={}", r.cpu_cv);
        // All sampled nodes show the same temporal pattern: pairwise
        // correlation of CPU series is high.
        let a = &r.sample_nodes_cpu[0];
        let b = &r.sample_nodes_cpu[r.sample_nodes_cpu.len() - 1];
        let n = a.points.len().min(b.points.len());
        let corr = correlation(
            &a.points[..n].iter().map(|p| p.1).collect::<Vec<_>>(),
            &b.points[..n].iter().map(|p| p.1).collect::<Vec<_>>(),
        );
        assert!(corr > 0.9, "node series diverge: corr={corr}");
    }

    fn correlation(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
        let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
    }
}
