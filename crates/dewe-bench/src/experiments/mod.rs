//! One module per paper artifact.

mod ablation;
mod fig10;
mod fig11;
mod fig2;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod overhead;
mod robust;
mod tables;

pub use ablation::{run_ablation, AblationResult};
pub use fig10::{run_fig10, Fig10Result};
pub use fig11::{run_fig11, Fig11Point, Fig11Result};
pub use fig2::{run_fig2, Fig2Result};
pub use fig4::{run_fig4, Fig4Result};
pub use fig5::{run_fig5, Fig5Result};
pub use fig6::{run_fig6, Fig6Result};
pub use fig7::{run_fig7, Fig7Point, Fig7Result};
pub use fig8::{run_fig8_fig9, Fig8Result};
pub use overhead::{run_overhead, OverheadResult};
pub use robust::{run_robust, RobustResult};
pub use tables::{run_table1, run_table2, run_table3, Table3Row};

use dewe_dag::Workflow;
use dewe_montage::MontageConfig;
use std::sync::Arc;

/// The standard workload: a Montage workflow at the scale's degree.
pub(crate) fn montage(scale: crate::Scale) -> Arc<Workflow> {
    Arc::new(MontageConfig::degree(scale.degree()).build())
}

/// `n` replicas of the standard workload.
pub(crate) fn ensemble(scale: crate::Scale, n: usize) -> Vec<Arc<Workflow>> {
    let wf = montage(scale);
    (0..n).map(|_| Arc::clone(&wf)).collect()
}
