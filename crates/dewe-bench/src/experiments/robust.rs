//! §V.A.3 robustness: worker-daemon kills during non-blocking versus
//! blocking jobs.
//!
//! Paper claims:
//! * interruptions during **non-blocking** jobs (mProjectPP/mDiffFit)
//!   grow the makespan by roughly the outage duration — execution resumes
//!   as soon as the worker restarts, without waiting for timeouts;
//! * interruptions during **blocking** jobs (mConcatFit/mBgModel) grow it
//!   by roughly the timeout of the interrupted job — nothing else can run
//!   until the resubmitted blocking job completes.

use dewe_core::sim::{run_ensemble, NodeFault, SimRunConfig};
use dewe_metrics::csv::table_to_csv;
use dewe_mq::ChaosConfig;
use dewe_simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

use crate::{write_csv, Scale};

/// Robustness experiment outputs.
pub struct RobustResult {
    /// Undisturbed single-workflow makespan.
    pub baseline_secs: f64,
    /// Makespan with a kill during the non-blocking stage 1.
    pub nonblocking_secs: f64,
    /// Makespan with a kill during the blocking stage 2.
    pub blocking_secs: f64,
    /// Outage duration used.
    pub outage_secs: f64,
    /// Job timeout used.
    pub timeout_secs: f64,
    /// Resubmissions in the two fault runs.
    pub resubmissions: (u64, u64),
    /// Message-level chaos columns (seeded drop/duplication injection).
    pub chaos: Vec<ChaosRow>,
}

/// One chaos-injection run: lossy/duplicating transport at a given rate.
pub struct ChaosRow {
    /// Probability a message is dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is duplicated.
    pub dup_prob: f64,
    /// Makespan under injection.
    pub makespan_secs: f64,
    /// Timeout-driven resubmissions (recovering dropped messages).
    pub resubmissions: u64,
    /// Duplicate completions absorbed (from duplicated messages).
    pub duplicate_completions: u64,
}

/// Run the robustness reproduction on a single-node cluster (the paper's
/// first test: master and worker daemon on the same node; the worker
/// daemon is killed and restarted shortly after). A single node guarantees
/// the blocking job is on the killed worker, making the blocking-stage
/// cost deterministic.
pub fn run_robust(scale: Scale) -> RobustResult {
    println!("== Robustness (§V.A.3): worker kill during non-blocking vs blocking jobs ==");
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };
    // A timeout shorter than the remaining stage-1 work lets killed
    // non-blocking jobs rerun while the stage is still busy, hiding their
    // recovery entirely — the mechanism behind the paper's "increase
    // roughly equals the duration of the interruptions".
    let timeout = match scale {
        Scale::Full => 60.0,
        Scale::Quick => 10.0,
    };
    let outage = match scale {
        Scale::Full => 20.0,
        Scale::Quick => 5.0,
    };

    let base = {
        let wfs = super::ensemble(scale, 1);
        let mut cfg = SimRunConfig::new(cluster);
        cfg.default_timeout_secs = timeout;
        cfg.timeout_scan_secs = 1.0;
        let r = run_ensemble(&wfs, &cfg);
        assert!(r.completed);
        r
    };

    // Stage boundaries from the DAG itself: stage 1 is the mProjectPP +
    // mDiffFit fan (levels 0-1) packed onto the node's slots; stage 2
    // begins when mConcatFit starts. Kill mid-stage-1 for the non-blocking
    // case and mid-mConcatFit for the blocking case.
    let wf = super::montage(scale);
    let lp = dewe_dag::LevelProfile::of(&wf);
    let slots = C3_8XLARGE.vcpus as f64;
    let level_cpu =
        |l: usize| -> f64 { lp.levels[l].iter().map(|&j| wf.job(j).cpu_seconds).sum::<f64>() };
    let stage1_secs = (level_cpu(0) + level_cpu(1)) / slots;
    let concat_cpu = wf.job(lp.levels[2][0]).cpu_seconds;
    let stage1_kill = stage1_secs * 0.5;
    let stage2_kill = stage1_secs + concat_cpu * 0.5;

    let run_fault = |kill_at: f64| {
        let wfs = super::ensemble(scale, 1);
        let mut cfg = SimRunConfig::new(cluster);
        cfg.default_timeout_secs = timeout;
        cfg.timeout_scan_secs = 1.0;
        cfg.faults = vec![NodeFault {
            node: 0,
            kill_at_secs: kill_at,
            restart_at_secs: Some(kill_at + outage),
        }];
        let r = run_ensemble(&wfs, &cfg);
        assert!(r.completed, "fault run must still complete");
        r
    };

    let nonblocking = run_fault(stage1_kill);
    let blocking = run_fault(stage2_kill);

    // Message-level chaos: a lossy, duplicating transport between master
    // and workers. Dropped dispatches are recovered by the checkout
    // timeout (auto-enabled by the sim when drop_prob > 0), dropped acks
    // by the job timeout, and duplicated completions are absorbed as
    // noise — the ensemble must still finish every job exactly once.
    let run_chaos = |drop_prob: f64, dup_prob: f64, seed: u64| {
        let wfs = super::ensemble(scale, 1);
        let mut cfg = SimRunConfig::new(cluster);
        cfg.default_timeout_secs = timeout;
        cfg.timeout_scan_secs = 1.0;
        cfg.chaos = Some(ChaosConfig::drop_dup(seed, drop_prob, dup_prob));
        let r = run_ensemble(&wfs, &cfg);
        assert!(r.completed, "chaos run must still complete every job");
        ChaosRow {
            drop_prob,
            dup_prob,
            makespan_secs: r.makespan_secs,
            resubmissions: r.engine.resubmissions,
            duplicate_completions: r.engine.duplicate_completions,
        }
    };
    let chaos = vec![run_chaos(0.02, 0.02, 0xD0D0), run_chaos(0.05, 0.05, 0xD0D1)];

    println!("baseline              : {:>7.0}s", base.makespan_secs);
    println!(
        "kill in stage 1 (+{outage:.0}s outage): {:>7.0}s  (delta {:+.0}s, resub {})",
        nonblocking.makespan_secs,
        nonblocking.makespan_secs - base.makespan_secs,
        nonblocking.engine.resubmissions
    );
    println!(
        "kill in stage 2 (timeout {timeout:.0}s): {:>7.0}s  (delta {:+.0}s, resub {})",
        blocking.makespan_secs,
        blocking.makespan_secs - base.makespan_secs,
        blocking.engine.resubmissions
    );
    for row in &chaos {
        println!(
            "chaos drop {:.0}% dup {:.0}%     : {:>7.0}s  (delta {:+.0}s, resub {}, dup acks {})",
            row.drop_prob * 100.0,
            row.dup_prob * 100.0,
            row.makespan_secs,
            row.makespan_secs - base.makespan_secs,
            row.resubmissions,
            row.duplicate_completions
        );
    }
    let mut rows = vec![
        vec![
            "baseline".into(),
            format!("{:.1}", base.makespan_secs),
            "0".into(),
            "0".into(),
            "0".into(),
        ],
        vec![
            "nonblocking_kill".into(),
            format!("{:.1}", nonblocking.makespan_secs),
            format!("{:.1}", nonblocking.makespan_secs - base.makespan_secs),
            nonblocking.engine.resubmissions.to_string(),
            nonblocking.engine.duplicate_completions.to_string(),
        ],
        vec![
            "blocking_kill".into(),
            format!("{:.1}", blocking.makespan_secs),
            format!("{:.1}", blocking.makespan_secs - base.makespan_secs),
            blocking.engine.resubmissions.to_string(),
            blocking.engine.duplicate_completions.to_string(),
        ],
    ];
    for row in &chaos {
        rows.push(vec![
            format!("chaos_drop{:.0}pct_dup{:.0}pct", row.drop_prob * 100.0, row.dup_prob * 100.0),
            format!("{:.1}", row.makespan_secs),
            format!("{:.1}", row.makespan_secs - base.makespan_secs),
            row.resubmissions.to_string(),
            row.duplicate_completions.to_string(),
        ]);
    }
    write_csv(
        "robust.csv",
        &table_to_csv(
            &["case", "makespan_secs", "delta_secs", "resubmissions", "duplicate_completions"],
            &rows,
        ),
    );
    RobustResult {
        baseline_secs: base.makespan_secs,
        nonblocking_secs: nonblocking.makespan_secs,
        blocking_secs: blocking.makespan_secs,
        outage_secs: outage,
        timeout_secs: timeout,
        resubmissions: (nonblocking.engine.resubmissions, blocking.engine.resubmissions),
        chaos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_shapes() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_rb"));
        let r = run_robust(Scale::Quick);
        // Non-blocking kill: grows by ~the outage (plus at most the
        // timeout tail of the killed short jobs), far less than a blocking
        // kill.
        let nb_delta = r.nonblocking_secs - r.baseline_secs;
        let b_delta = r.blocking_secs - r.baseline_secs;
        assert!(nb_delta >= 0.0);
        assert!(
            b_delta > nb_delta,
            "blocking kill must cost more: nb={nb_delta:.0} b={b_delta:.0}"
        );
        // Blocking kill cost is dominated by the timeout.
        assert!(
            b_delta > 0.5 * r.timeout_secs,
            "blocking delta {b_delta:.0} vs timeout {}",
            r.timeout_secs
        );
        // Both fault runs resubmitted something.
        assert!(r.resubmissions.0 > 0 && r.resubmissions.1 > 0);
        // Chaos columns: every injected run completed (asserted inside),
        // rates are ordered, and the 5% run shows observable fault noise.
        assert_eq!(r.chaos.len(), 2);
        for row in &r.chaos {
            assert!(row.makespan_secs >= r.baseline_secs - 1.0);
        }
        let heavy = &r.chaos[1];
        assert!(
            heavy.resubmissions + heavy.duplicate_completions > 0,
            "5% drop+dup must leave traces"
        );
    }
}
