//! Tables I–III: instance catalog, disk capability, cluster designs.

use dewe_metrics::csv::table_to_csv;
use dewe_provision::{recommend, ClusterPlan};
use dewe_simcloud::{InstanceType, C3_8XLARGE, I2_8XLARGE, R3_8XLARGE};

use crate::write_csv;

const TYPES: [&InstanceType; 3] = [&C3_8XLARGE, &R3_8XLARGE, &I2_8XLARGE];

/// Table I: EC2 instance types.
pub fn run_table1() {
    println!("== Table I: EC2 instance types ==");
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>10} {:>12}",
        "model", "vCPU", "memory(GB)", "storage(GB)", "net(Gbps)", "price($/hr)"
    );
    let mut rows = Vec::new();
    for t in TYPES {
        println!(
            "{:<12} {:>6} {:>12} {:>12} {:>10} {:>12}",
            t.name, t.vcpus, t.memory_gb, t.storage_gb, t.network_gbps, t.price_per_hour
        );
        rows.push(vec![
            t.name.to_string(),
            t.vcpus.to_string(),
            t.memory_gb.to_string(),
            t.storage_gb.to_string(),
            t.network_gbps.to_string(),
            t.price_per_hour.to_string(),
        ]);
    }
    write_csv(
        "table1.csv",
        &table_to_csv(
            &["model", "vcpu", "memory_gb", "storage_gb", "network_gbps", "price_per_hour"],
            &rows,
        ),
    );
}

/// Table II: RAID-0 disk I/O capacity.
pub fn run_table2() {
    println!("== Table II: disk I/O capacity (MB/s) ==");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "model", "seq read", "seq write", "rand read", "rand write"
    );
    let mut rows = Vec::new();
    for t in TYPES {
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            t.name, t.disk.seq_read, t.disk.seq_write, t.disk.rand_read, t.disk.rand_write
        );
        rows.push(vec![
            t.name.to_string(),
            t.disk.seq_read.to_string(),
            t.disk.seq_write.to_string(),
            t.disk.rand_read.to_string(),
            t.disk.rand_write.to_string(),
        ]);
    }
    write_csv(
        "table2.csv",
        &table_to_csv(&["model", "seq_read", "seq_write", "rand_read", "rand_write"], &rows),
    );
}

/// One Table III row.
pub type Table3Row = ClusterPlan;

/// Table III: cluster designs from Eq. 2 for W = 200, T = 3300 s, using
/// the paper's converged node performance indexes.
pub fn run_table3() -> Vec<Table3Row> {
    run_table3_with(&[(&C3_8XLARGE, 0.0015), (&R3_8XLARGE, 0.0024), (&I2_8XLARGE, 0.0026)])
}

/// Table III with caller-supplied (instance, converged index) pairs, e.g.
/// indexes measured by this repository's own profiling (fig5).
pub fn run_table3_with(indexes: &[(&'static InstanceType, f64)]) -> Vec<Table3Row> {
    println!("== Table III: cluster designs (W=200, T=3300 s; Eq. 2) ==");
    let plans = recommend(indexes, 200, 3300.0);
    println!(
        "{:<12} {:>6} {:>10} {:>14} {:>12} {:>14}",
        "cluster", "nodes", "index", "pred time(s)", "price($/hr)", "pred cost($)"
    );
    let mut rows = Vec::new();
    for p in &plans {
        println!(
            "{:<12} {:>6} {:>10.4} {:>14.0} {:>12.1} {:>14.2}",
            p.instance, p.nodes, p.index, p.predicted_secs, p.price_per_hour, p.predicted_cost
        );
        rows.push(vec![
            p.instance.to_string(),
            p.nodes.to_string(),
            format!("{:.5}", p.index),
            format!("{:.0}", p.predicted_secs),
            format!("{:.2}", p.price_per_hour),
            format!("{:.2}", p.predicted_cost),
        ]);
    }
    write_csv(
        "table3.csv",
        &table_to_csv(
            &["cluster", "nodes", "index", "predicted_secs", "price_per_hour", "predicted_cost"],
            &rows,
        ),
    );
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reproduces_paper_cluster_sizes() {
        std::env::set_var("DEWE_RESULTS_DIR", std::env::temp_dir().join("dewe_t3"));
        let plans = run_table3();
        let by_name = |n: &str| plans.iter().find(|p| p.instance == n).unwrap().nodes as i64;
        // Paper: 40 / 25 / 23 (Eq. 2 with ceiling gives 41/26/24; ±1).
        assert!((by_name("c3.8xlarge") - 40).abs() <= 1);
        assert!((by_name("r3.8xlarge") - 25).abs() <= 1);
        assert!((by_name("i2.8xlarge") - 23).abs() <= 1);
    }
}
