//! # dewe-bench
//!
//! The reproduction harness: one module per table and figure of the DEWE
//! v2 paper's evaluation (§II motivation and §V evaluation), each
//! regenerating the artifact's rows/series from the simulated system and
//! writing raw data as CSV under `results/`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p dewe-bench --bin repro -- all
//! ```
//!
//! or a single experiment (`table1`..`table3`, `fig2`, `fig4`..`fig11`,
//! `robust`, `ablation`). Add `--quick` for a reduced-scale pass (smaller
//! mosaics and ensembles; minutes → seconds) that preserves every shape.
//!
//! Absolute numbers are *not* expected to match the paper — the substrate
//! is a calibrated simulator, not the authors' EC2 testbed — but the
//! shapes are: who wins, by what factor, where the crossovers fall. The
//! paper-vs-measured record lives in `EXPERIMENTS.md`.

pub mod experiments;

use std::path::{Path, PathBuf};

/// Scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's parameters (6.0-degree Montage, up to 200 workflows).
    Full,
    /// Reduced parameters preserving every qualitative shape.
    Quick,
}

impl Scale {
    /// Montage mosaic size in degrees.
    pub fn degree(self) -> f64 {
        match self {
            Scale::Full => 6.0,
            Scale::Quick => 2.0,
        }
    }

    /// Scale an ensemble size.
    pub fn workflows(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 4).max(1),
        }
    }
}

/// Where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DEWE_RESULTS_DIR")
        .map_or_else(|_| Path::new("results").to_path_buf(), PathBuf::from);
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a CSV document into the results directory.
pub fn write_csv(name: &str, contents: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  [csv] {}", path.display());
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect::<Vec<_>>().join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters() {
        assert_eq!(Scale::Full.degree(), 6.0);
        assert_eq!(Scale::Quick.degree(), 2.0);
        assert_eq!(Scale::Full.workflows(200), 200);
        assert_eq!(Scale::Quick.workflows(200), 50);
        assert_eq!(Scale::Quick.workflows(1), 1);
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
