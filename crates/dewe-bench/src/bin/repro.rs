//! `repro` — regenerate the DEWE v2 paper's tables and figures.
//!
//! ```text
//! repro all [--quick]          run every experiment
//! repro table1|table2|table3   instance catalog / disk capability / designs
//! repro fig2                   per-vCPU timeline (motivation run)
//! repro fig4                   10 workflows, 1 node, 3 instance types
//! repro fig5                   workload & cluster-size scaling (profiling)
//! repro fig6                   DEWE vs Pegasus, 1 workflow traces
//! repro fig7                   DEWE vs Pegasus, W = 1..5 totals
//! repro fig8                   submission-interval sweep (+ fig9 series)
//! repro robust                 worker-kill fault injection (§V.A.3)
//! repro fig10                  200 workflows on 25 r3.8xlarge nodes
//! repro fig11                  large-scale provisioning evaluation
//! repro ablation               extensions & overhead decomposition
//! repro overhead               per-job queue-wait instrumentation
//! ```
//!
//! Raw data lands in `results/` (override with `DEWE_RESULTS_DIR`).

use dewe_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let what = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| {
        eprintln!("usage: repro <all|table1|table2|table3|fig2|fig4|fig5|fig6|fig7|fig8|robust|overhead|fig10|fig11|ablation> [--quick]");
        std::process::exit(2);
    });

    let started = std::time::Instant::now();
    match what.as_str() {
        "all" => {
            experiments::run_table1();
            experiments::run_table2();
            experiments::run_table3();
            experiments::run_fig2(scale);
            experiments::run_fig4(scale);
            experiments::run_fig5(scale);
            experiments::run_fig6(scale);
            experiments::run_fig7(scale);
            experiments::run_fig8_fig9(scale);
            experiments::run_robust(scale);
            experiments::run_overhead(scale);
            experiments::run_fig10(scale);
            experiments::run_fig11(scale);
            experiments::run_ablation(scale);
        }
        "table1" => experiments::run_table1(),
        "table2" => experiments::run_table2(),
        "table3" => {
            experiments::run_table3();
        }
        "fig2" => {
            experiments::run_fig2(scale);
        }
        "fig4" => {
            experiments::run_fig4(scale);
        }
        "fig5" => {
            experiments::run_fig5(scale);
        }
        "fig6" => {
            experiments::run_fig6(scale);
        }
        "fig7" => {
            experiments::run_fig7(scale);
        }
        "fig8" | "fig9" => {
            experiments::run_fig8_fig9(scale);
        }
        "robust" => {
            experiments::run_robust(scale);
        }
        "fig10" => {
            experiments::run_fig10(scale);
        }
        "fig11" => {
            experiments::run_fig11(scale);
        }
        "ablation" => {
            experiments::run_ablation(scale);
        }
        "overhead" => {
            experiments::run_overhead(scale);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(2);
        }
    }
    eprintln!("[repro] {what} done in {:?}", started.elapsed());
}
