//! `hotpath` — end-to-end master hot-path throughput.
//!
//! Runs a Montage ensemble through the discrete-event runtime and reports
//! jobs simulated per second — the number that bounds how fast the paper's
//! large-scale experiments (up to 1.7 million jobs) reproduce. The default
//! workload is the tracked configuration: 20 × Montage 2.0° (the paper's
//! §V.A workflow) on four c3.8xlarge nodes.
//!
//! ```text
//! hotpath [--quick] [--shards <n>] [--threads <n>] [--out <path>]
//!         [--check <baseline.json>] [--paper-ensemble]
//!         [--paper-workflows <n>] [--max-paper-rss-mb <mb>]
//!         [--timer-backend <heap|wheel>] [--dispatch-batch <on|off>]
//! ```
//!
//! `--quick` shrinks the run (5 workflows, 3 reps) for smoke testing;
//! tracked numbers in `BENCH_hotpath.json` come from the full mode.
//!
//! `--paper-ensemble` additionally runs the paper's headline workload —
//! 200 × Montage 6.0° (1,717,200 jobs, §V.B scale) on forty c3.8xlarge
//! nodes (1,280 vCPUs) — through the sequential shards=1 path and the
//! parallel shards=4 runner, and records throughput plus the process's
//! peak RSS in a `paper_ensemble` section of the report.
//! `--paper-workflows <n>` shrinks the ensemble (CI smoke uses 10), and
//! `--max-paper-rss-mb <mb>` turns peak RSS into a hard gate: exceed it
//! and the run exits non-zero.
//!
//! `--shards <n>` runs the measured reps through the threaded sharded
//! runner (`run_ensemble_sharded`) instead of the single engine, and
//! `--threads <n>` caps its worker threads (0 = one per shard). Full
//! (non-quick) runs additionally sweep shards = 1/2/4/8, measuring each
//! count both sequentially (single-threaded sharded facade) and in
//! parallel (one shard sub-sim per thread), and record both throughputs
//! in the report's `shard_sweep` array plus the shards=4 parallel/
//! sequential ratio as `parallel_speedup_shards_4`.
//!
//! `--timer-backend <heap|wheel>` selects the engine's deadline-timer
//! backend for the headline runs (wheel, the engine default, unless
//! overridden). Every run additionally measures the tracked workload
//! under *both* backends and records the A/B in a `timer_backend`
//! report section; with `--check` (or `--paper-ensemble`) the wheel
//! falling more than 5% below the heap on the same machine in the same
//! process fails the run — the wheel only stays the default while it
//! earns it.
//!
//! `--dispatch-batch <on|off>` (default on) gates the wire-pipeline
//! exercise: dispatches published over loopback TCP through the real
//! `TcpMaster`/`TcpWorkerLink` pair, once per-frame and once coalesced
//! into `DispatchBatch` frames, recorded in a `dispatch_batch` section
//! with the batched/single throughput ratio. `off` skips the batched
//! half (the section then records the per-frame path only).
//!
//! `--check <baseline.json>` turns the run into a regression gate: after
//! measuring, compare against the `jobs_per_sec` recorded in the baseline
//! file and exit non-zero if throughput fell more than 20% below it. The
//! gate is always a like-for-like sequential shards=1 comparison, so
//! `--shards`/`--threads` are rejected alongside it.
//! CI runs `hotpath --quick --check BENCH_hotpath.json` on every push so
//! a hot-path regression fails the build instead of landing silently.

use std::sync::Arc;
use std::time::Instant;

use dewe_core::realtime::{
    LivenessTable, MasterStats, Registry, TcpMaster, TcpMasterOptions, TcpWorkerLink,
    TcpWorkerOptions,
};
use dewe_core::sim::{run_ensemble, run_ensemble_sharded, SimRunConfig};
use dewe_core::{AckKind, AckMsg, DispatchMsg, LifecycleKind, LifecycleMsg, TimerBackend};
use dewe_dag::{EnsembleJobId, JobId, Workflow, WorkflowId};
use dewe_montage::MontageConfig;
use dewe_mq::{Transport, WorkerTransport};
use dewe_simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

struct Config {
    workflows: usize,
    degree: f64,
    nodes: usize,
    reps: usize,
    quick: bool,
    shards: usize,
    threads: usize,
    out: String,
    check: Option<String>,
    paper: bool,
    paper_workflows: usize,
    max_paper_rss_mb: Option<f64>,
    timer_backend: TimerBackend,
    dispatch_batch: bool,
}

fn parse_args() -> Config {
    let mut quick = false;
    let mut shards = 1usize;
    let mut threads = 0usize;
    let mut out = String::from("BENCH_hotpath.json");
    let mut check = None;
    let mut paper = false;
    let mut paper_workflows = 200usize;
    let mut max_paper_rss_mb = None;
    let mut timer_backend = TimerBackend::default();
    let mut dispatch_batch = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--shards" => {
                shards =
                    args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                        || {
                            eprintln!("--shards requires a positive integer");
                            std::process::exit(2);
                        },
                    )
            }
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads requires a non-negative integer (0 = one per shard)");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            "--check" => {
                check = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check requires a baseline json path");
                    std::process::exit(2);
                }))
            }
            "--paper-ensemble" => paper = true,
            "--timer-backend" => {
                timer_backend = match args.next().as_deref() {
                    Some("heap") => TimerBackend::Heap,
                    Some("wheel") => TimerBackend::Wheel,
                    _ => {
                        eprintln!("--timer-backend requires `heap` or `wheel`");
                        std::process::exit(2);
                    }
                }
            }
            "--dispatch-batch" => {
                dispatch_batch = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => {
                        eprintln!("--dispatch-batch requires `on` or `off`");
                        std::process::exit(2);
                    }
                }
            }
            "--paper-workflows" => {
                paper_workflows =
                    args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                        || {
                            eprintln!("--paper-workflows requires a positive integer");
                            std::process::exit(2);
                        },
                    )
            }
            "--max-paper-rss-mb" => {
                max_paper_rss_mb = Some(
                    args.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|&v| v > 0.0)
                        .unwrap_or_else(|| {
                            eprintln!("--max-paper-rss-mb requires a positive number");
                            std::process::exit(2);
                        }),
                )
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`\n\
                     usage: hotpath [--quick] [--shards <n>] [--threads <n>] [--out <path>] \
                     [--check <baseline.json>] [--paper-ensemble] [--paper-workflows <n>] \
                     [--max-paper-rss-mb <mb>] [--timer-backend <heap|wheel>] \
                     [--dispatch-batch <on|off>]"
                );
                std::process::exit(2);
            }
        }
    }
    if !paper && (paper_workflows != 200 || max_paper_rss_mb.is_some()) {
        eprintln!("--paper-workflows/--max-paper-rss-mb only apply with --paper-ensemble");
        std::process::exit(2);
    }
    if check.is_some() && (shards != 1 || threads != 0) {
        // The tracked baseline is a sequential shards=1 number; gating a
        // sharded or threaded run against it would compare different
        // machines.
        eprintln!("--check gates the sequential shards=1 hot path; drop --shards/--threads");
        std::process::exit(2);
    }
    let (workflows, reps) = if quick { (5, 3) } else { (20, 15) };
    Config {
        workflows,
        degree: 2.0,
        nodes: 4,
        reps,
        quick,
        shards,
        threads,
        out,
        check,
        paper,
        paper_workflows,
        max_paper_rss_mb,
        timer_backend,
        dispatch_batch,
    }
}

/// Pull `"jobs_per_sec": <number>` out of a tracked baseline file without
/// a JSON dependency (the field is emitted by this binary, so the shape is
/// under our control).
fn baseline_jobs_per_sec(path: &str) -> f64 {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    let Some(pos) = text.find("\"jobs_per_sec\"") else {
        eprintln!("baseline {path} has no jobs_per_sec field");
        std::process::exit(2);
    };
    let rest = &text[pos..];
    let value = rest
        .split(':')
        .nth(1)
        .and_then(|v| v.split([',', '\n', '}']).next())
        .map(str::trim)
        .and_then(|v| v.parse::<f64>().ok());
    match value {
        Some(v) if v > 0.0 => v,
        _ => {
            eprintln!("baseline {path} has a malformed jobs_per_sec field");
            std::process::exit(2);
        }
    }
}

/// Maximum tolerated throughput regression vs the checked-in baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Process peak resident set size in MiB, from `VmHWM` in
/// `/proc/self/status`. `None` where procfs is unavailable (non-Linux);
/// the report then records `null` instead of a guess.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Fastest wall-clock and its jobs/s over `reps` runs of `ensemble`,
/// asserting every rep completes all `total_jobs` jobs.
///
/// The estimator is the *minimum*, not the median: the workload is fully
/// deterministic, so every rep does identical work and the only variance
/// is additive interference from the (shared) runner — the fastest rep is
/// therefore the lowest-noise estimate of true cost. The full rep list
/// and the median still land in the report for transparency.
fn best_jobs_per_sec(
    ensemble: &[Arc<Workflow>],
    total_jobs: usize,
    sim: &SimRunConfig,
    sharded: bool,
    reps: usize,
) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let report =
            if sharded { run_ensemble_sharded(ensemble, sim) } else { run_ensemble(ensemble, sim) };
        let secs = start.elapsed().as_secs_f64();
        assert!(report.completed, "ensemble must complete");
        assert_eq!(report.engine.jobs_completed as usize, total_jobs);
        best = best.min(secs);
    }
    (best, total_jobs as f64 / best)
}

/// Interleaved heap/wheel A/B: alternate single reps of each backend and
/// take each side's best, so a CPU-frequency window shift on a shared
/// runner biases both measurements equally. Running all of one backend's
/// reps before the other's lets a mid-A/B window change fake a >5% gap
/// and flake the wheel gate. Returns `(heap_jps, wheel_jps)`.
fn ab_timer_backends(
    ensemble: &[Arc<Workflow>],
    total_jobs: usize,
    sim: &SimRunConfig,
    sharded: bool,
    reps: usize,
) -> (f64, f64) {
    let mut heap_cfg = sim.clone();
    heap_cfg.timer_backend = TimerBackend::Heap;
    let mut wheel_cfg = sim.clone();
    wheel_cfg.timer_backend = TimerBackend::Wheel;
    let (mut heap_jps, mut wheel_jps) = (0.0f64, 0.0f64);
    for _ in 0..reps {
        let (_, h) = best_jobs_per_sec(ensemble, total_jobs, &heap_cfg, sharded, 1);
        let (_, w) = best_jobs_per_sec(ensemble, total_jobs, &wheel_cfg, sharded, 1);
        heap_jps = heap_jps.max(h);
        wheel_jps = wheel_jps.max(w);
    }
    (heap_jps, wheel_jps)
}

/// Exercise the master's fault plane at volume: the [`LivenessTable`]
/// admission fence sits on the ack hot path whenever leases are enabled,
/// so its per-op cost is tracked alongside engine throughput. The churn
/// loop cycles every lifecycle edge — register, Running/Completed acks,
/// lease expiry with requeue, zombie-ack fencing, revival, and a
/// graceful drain — and returns the op rate plus the resulting
/// [`MasterStats`] counters for the report's `fault_plane` section.
fn fault_plane_exercise(rounds: usize) -> (u64, f64, MasterStats) {
    const WORKERS: u32 = 8;
    const JOBS_PER_WORKER: u32 = 16;
    let mut table = LivenessTable::new(1.0);
    let (mut tr, mut rq) = (Vec::new(), Vec::new());
    let mut ops = 0u64;
    let job = |r: usize, w: u32, j: u32| {
        EnsembleJobId::new(WorkflowId(r as u32), JobId(w * JOBS_PER_WORKER + j))
    };
    let start = Instant::now();
    for r in 0..rounds {
        let t0 = r as f64 * 10.0;
        for w in 0..WORKERS {
            table.on_lifecycle(
                &LifecycleMsg::new(w, r as u32, LifecycleKind::Heartbeat),
                t0,
                &mut tr,
                &mut rq,
            );
            ops += 1;
        }
        rq.clear();
        // Every worker checks out a batch; the even ones complete it.
        for w in 0..WORKERS {
            for j in 0..JOBS_PER_WORKER {
                let running = AckMsg::new(job(r, w, j), w, AckKind::Running, 1);
                table.admit_ack(&running, t0 + 0.1, &mut tr);
                ops += 1;
                if w % 2 == 0 {
                    let done = AckMsg::new(
                        running.job,
                        running.worker,
                        AckKind::Completed,
                        running.attempt,
                    );
                    table.admit_ack(&done, t0 + 0.2, &mut tr);
                    ops += 1;
                }
            }
        }
        // Worker 7 announces a drain and finishes its batch gracefully.
        table.on_lifecycle(
            &LifecycleMsg::new(7, r as u32, LifecycleKind::Drain),
            t0 + 0.3,
            &mut tr,
            &mut rq,
        );
        for j in 0..JOBS_PER_WORKER {
            let done = AckMsg::new(job(r, 7, j), 7, AckKind::Completed, 1);
            table.admit_ack(&done, t0 + 0.4, &mut tr);
            ops += 1;
        }
        // The odd workers go silent past the lease: expiry requeues
        // their in-flight jobs; their late acks are fenced as stale.
        table.expire_due(t0 + 2.0, &mut tr, &mut rq);
        for entry in rq.drain(..) {
            table.admit_ack(&entry.as_failed_ack(), t0 + 2.0, &mut tr);
            ops += 1;
        }
        for w in (1..WORKERS).step_by(2) {
            let late = AckMsg::new(job(r, w, 0), w, AckKind::Completed, 1);
            table.admit_ack(&late, t0 + 2.1, &mut tr);
            ops += 1;
        }
        tr.clear();
    }
    let secs = start.elapsed().as_secs_f64();
    (ops, ops as f64 / secs, table.stats())
}

/// End-to-end wire dispatch throughput over loopback TCP: the real
/// `TcpMaster`/`TcpWorkerLink` pair, `jobs` unique dispatches published
/// in runs of `run_len` (1 = the per-frame path, > 1 the coalesced
/// `DispatchBatch` path), a worker thread acknowledging each as
/// completed, and the master draining the acks. The send-window credit
/// machinery paces everything — runs longer than the free window park
/// in the pending queue and flow per refund, exactly the production
/// pipeline. Returns round-trip jobs per second.
fn wire_dispatch_exercise(jobs: usize, run_len: usize) -> f64 {
    let master =
        TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).expect("bind loopback master");
    let link = TcpWorkerLink::connect(
        master.local_addr(),
        Registry::new(),
        TcpWorkerOptions { worker_id: 0, window: 256, ..TcpWorkerOptions::default() },
    )
    .expect("connect loopback worker");
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    while master.worker_conns() == 0 {
        assert!(Instant::now() < deadline, "worker link never registered");
        std::thread::yield_now();
    }
    let worker = std::thread::spawn(move || {
        let mut seen = 0usize;
        while seen < jobs {
            if let Some(d) = link.pull_dispatch(std::time::Duration::from_secs(10)) {
                link.publish_ack(AckMsg::new(d.job, 0, AckKind::Completed, d.attempt));
                seen += 1;
            }
        }
        link
    });
    let job =
        |i: usize| EnsembleJobId::new(WorkflowId((i >> 20) as u32), JobId(i as u32 & 0xFFFFF));
    let start = Instant::now();
    let mut run: Vec<DispatchMsg> = Vec::with_capacity(run_len);
    let mut sent = 0usize;
    while sent < jobs {
        let n = run_len.min(jobs - sent);
        if n == 1 {
            master.publish_dispatch(0, DispatchMsg::new(job(sent), 1));
        } else {
            run.extend((sent..sent + n).map(|i| DispatchMsg::new(job(i), 1)));
            master.publish_dispatch_batch(0, &mut run);
        }
        sent += n;
    }
    let mut acked = 0usize;
    while acked < jobs {
        assert!(
            master.pull_ack(std::time::Duration::from_secs(10)).is_some(),
            "wire exercise stalled at {acked}/{jobs} acks"
        );
        acked += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let link = worker.join().expect("worker thread");
    link.close();
    master.shutdown();
    jobs as f64 / secs
}

/// Maximum tolerated wheel-vs-heap shortfall measured A/B in the same
/// process: the wheel is the default backend and must stay within 5% of
/// the heap (it is expected to *beat* it; the margin absorbs noise).
const WHEEL_REGRESSION_TOLERANCE: f64 = 0.05;

fn main() {
    let cfg = parse_args();
    let montage = MontageConfig::degree(cfg.degree);
    let workflow = Arc::new(montage.build());
    // Shape-drift fence: every job count this bench reports is derived
    // from the generated workflow, and the generated workflow must agree
    // with the closed-form `MontageShape` the oracle's scenario generator
    // reasons about. If the generator and the shape model ever diverge,
    // the bench fails instead of silently timing a different workload.
    assert_eq!(
        workflow.job_count(),
        montage.shape().total_jobs,
        "generated Montage {:.1}deg workflow disagrees with MontageShape",
        cfg.degree
    );
    let ensemble: Vec<Arc<Workflow>> = (0..cfg.workflows).map(|_| Arc::clone(&workflow)).collect();
    let total_jobs = workflow.job_count() * cfg.workflows;
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: cfg.nodes, storage: StorageConfig::LocalDisk };
    let mut sim = SimRunConfig::new(cluster);
    sim.shards = cfg.shards;
    sim.threads = cfg.threads;
    sim.timer_backend = cfg.timer_backend;
    let measure = |sim: &SimRunConfig| {
        if sim.shards > 1 {
            run_ensemble_sharded(&ensemble, sim)
        } else {
            run_ensemble(&ensemble, sim)
        }
    };
    let effective_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "hotpath: {} x montage {:.1}deg ({} jobs) on {} x {}, {} reps, {} shard(s), \
         {} thread(s), {} core(s){}",
        cfg.workflows,
        cfg.degree,
        total_jobs,
        cfg.nodes,
        C3_8XLARGE.name,
        cfg.reps,
        cfg.shards,
        cfg.threads,
        effective_cores,
        if cfg.quick { " (quick)" } else { "" }
    );

    // Warm caches and page in the workload before timing.
    let warm = measure(&sim);
    assert!(warm.completed, "ensemble must complete");

    let mut wall_secs = Vec::with_capacity(cfg.reps);
    let mut last = warm;
    for rep in 0..cfg.reps {
        let start = Instant::now();
        let report = measure(&sim);
        let secs = start.elapsed().as_secs_f64();
        assert!(report.completed, "ensemble must complete");
        assert_eq!(report.engine.jobs_completed as usize, total_jobs);
        eprintln!("  rep {:>2}: {:.3}s  ({:.0} jobs/s)", rep + 1, secs, total_jobs as f64 / secs);
        wall_secs.push(secs);
        last = report;
    }

    let mut sorted = wall_secs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite wall time"));
    let median = sorted[sorted.len() / 2];
    // Headline throughput uses the fastest rep (see best_jobs_per_sec for
    // the rationale); the median is recorded alongside.
    let min_wall = sorted[0];
    let jobs_per_sec = total_jobs as f64 / min_wall;
    eprintln!(
        "best: {min_wall:.3}s -> {jobs_per_sec:.0} jobs simulated/sec \
         (median {median:.3}s, {:.0} jobs/s)",
        total_jobs as f64 / median
    );

    // Full runs sweep the shard-count knob so the tracked report shows
    // how throughput scales with per-shard engine partitioning — both
    // sequentially (sharded facade, one OS thread) and in parallel (one
    // shard sub-sim per worker thread).
    let mut sweep_json = String::new();
    if !cfg.quick {
        const SWEEP_REPS: usize = 5;
        let best_jps = |s: &SimRunConfig, sharded| {
            best_jobs_per_sec(&ensemble, total_jobs, s, sharded, SWEEP_REPS)
        };
        let mut entries = Vec::new();
        let mut speedup_4 = None;
        for n in [1usize, 2, 4, 8] {
            // The threaded runner clamps shards to the node count: each
            // shard needs at least one simulated node (and one workflow).
            let effective = n.min(cfg.nodes).min(cfg.workflows);
            if effective != n {
                eprintln!(
                    "sweep: shards={n} capped to {effective} \
                     ({} nodes, {} workflows)",
                    cfg.nodes, cfg.workflows
                );
            }
            let mut s = sim.clone();
            s.shards = n;
            s.threads = 1; // sequential: sharded facade on one thread
            let (seq_wall, seq_jps) = best_jps(&s, false);
            s.threads = 0; // parallel: one sub-sim thread per shard
            let (par_wall, par_jps) = best_jps(&s, true);
            if n == 4 {
                speedup_4 = Some(par_jps / seq_jps);
            }
            eprintln!(
                "sweep shards={n} (effective {effective}): sequential {seq_wall:.3}s \
                 ({seq_jps:.0} jobs/s), parallel {par_wall:.3}s ({par_jps:.0} jobs/s)"
            );
            entries.push(format!(
                "    {{\"shards\": {n}, \"effective_shards\": {effective}, \
                 \"sequential_best_wall_secs\": {seq_wall:.6}, \
                 \"sequential_jobs_per_sec\": {seq_jps:.1}, \
                 \"parallel_best_wall_secs\": {par_wall:.6}, \
                 \"parallel_jobs_per_sec\": {par_jps:.1}}}"
            ));
        }
        sweep_json = format!(
            ",\n  \"parallel_speedup_shards_4\": {:.3},\n  \"shard_sweep\": [\n{}\n  ]",
            speedup_4.expect("sweep covers shards=4"),
            entries.join(",\n")
        );
    }

    // Timer-backend A/B: the tracked workload under both deadline-timer
    // backends, same process, same machine. The wheel is the default and
    // is gated (with --check or --paper-ensemble) to stay within
    // WHEEL_REGRESSION_TOLERANCE of the heap.
    let ab_reps = if cfg.quick { 3 } else { 5 };
    let (heap_jps, wheel_jps) =
        ab_timer_backends(&ensemble, total_jobs, &sim, sim.shards > 1, ab_reps);
    eprintln!(
        "timer backends: heap {heap_jps:.0} jobs/s, wheel {wheel_jps:.0} jobs/s \
         (wheel/heap {:.3})",
        wheel_jps / heap_jps
    );
    let timer_json = format!(
        ",\n  \"timer_backend\": {{\n    \"selected\": \"{}\",\n    \
         \"ab_reps\": {ab_reps},\n    \
         \"heap_jobs_per_sec\": {heap_jps:.1},\n    \
         \"wheel_jobs_per_sec\": {wheel_jps:.1},\n    \
         \"wheel_over_heap\": {:.4}\n  }}",
        match cfg.timer_backend {
            TimerBackend::Heap => "heap",
            TimerBackend::Wheel => "wheel",
        },
        wheel_jps / heap_jps,
    );
    let mut wheel_failure = None;
    if (cfg.check.is_some() || cfg.paper)
        && wheel_jps < heap_jps * (1.0 - WHEEL_REGRESSION_TOLERANCE)
    {
        wheel_failure = Some((wheel_jps, heap_jps));
    }

    // Wire-pipeline exercise: the same dispatch volume through the real
    // loopback TCP runtime, per-frame vs coalesced DispatchBatch runs.
    let wire_jobs = if cfg.quick { 20_000 } else { 50_000 };
    const WIRE_RUN_LEN: usize = 64;
    let single_wire_jps = wire_dispatch_exercise(wire_jobs, 1);
    let batched_wire_jps = if cfg.dispatch_batch {
        Some(wire_dispatch_exercise(wire_jobs, WIRE_RUN_LEN))
    } else {
        None
    };
    match batched_wire_jps {
        Some(batched) => eprintln!(
            "wire dispatch: single {single_wire_jps:.0} jobs/s, batched(x{WIRE_RUN_LEN}) \
             {batched:.0} jobs/s ({:.2}x)",
            batched / single_wire_jps
        ),
        None => {
            eprintln!("wire dispatch: single {single_wire_jps:.0} jobs/s (batched path disabled)")
        }
    }
    let wire_json = format!(
        ",\n  \"dispatch_batch\": {{\n    \"enabled\": {},\n    \
         \"wire_jobs\": {wire_jobs},\n    \"run_len\": {WIRE_RUN_LEN},\n    \
         \"single_jobs_per_sec\": {single_wire_jps:.1},\n    \
         \"batched_jobs_per_sec\": {},\n    \"batched_over_single\": {}\n  }}",
        cfg.dispatch_batch,
        batched_wire_jps.map_or_else(|| String::from("null"), |v| format!("{v:.1}")),
        batched_wire_jps
            .map_or_else(|| String::from("null"), |v| format!("{:.4}", v / single_wire_jps)),
    );

    // The paper's headline scale: 200 x Montage 6.0deg = 1,717,200 jobs on
    // forty c3.8xlarge nodes (1,280 vCPUs), measured sequentially and
    // through the parallel shards=4 runner, with the process's peak RSS
    // recorded so memory growth at ensemble scale is tracked, not assumed.
    let mut paper_json = String::new();
    let mut rss_failure = None;
    if cfg.paper {
        const PAPER_REPS: usize = 3;
        const PAPER_NODES: usize = 40;
        let paper_wf = Arc::new(MontageConfig::degree(6.0).build());
        // The headline "1,717,200 jobs" claim is 200 x the paper's 8,586-job
        // 6.0deg workflow; pin the generated workflow to the paper constant
        // so the tracked report can never drift from dewe-montage.
        assert_eq!(
            paper_wf.job_count(),
            MontageConfig::PAPER_6DEG_JOBS,
            "Montage 6.0deg workflow drifted from the paper's job count"
        );
        let paper_ensemble: Vec<Arc<Workflow>> =
            (0..cfg.paper_workflows).map(|_| Arc::clone(&paper_wf)).collect();
        let paper_jobs = paper_wf.job_count() * cfg.paper_workflows;
        let paper_cluster = ClusterConfig {
            instance: C3_8XLARGE,
            nodes: PAPER_NODES,
            storage: StorageConfig::LocalDisk,
        };
        eprintln!(
            "paper ensemble: {} x montage 6.0deg ({} jobs) on {} x {} ({} vCPUs), {} reps",
            cfg.paper_workflows,
            paper_jobs,
            PAPER_NODES,
            C3_8XLARGE.name,
            C3_8XLARGE.vcpus as usize * PAPER_NODES,
            PAPER_REPS,
        );
        let mut s = SimRunConfig::new(paper_cluster);
        s.shards = 1;
        s.threads = 1;
        s.timer_backend = cfg.timer_backend;
        let (seq_wall, seq_jps) =
            best_jobs_per_sec(&paper_ensemble, paper_jobs, &s, false, PAPER_REPS);
        eprintln!("  sequential shards=1: {seq_wall:.3}s ({seq_jps:.0} jobs/s)");
        // Paper-scale timer A/B: the wheel's headline claim is made at
        // this job volume, so it is also gated here, against a heap run
        // from the same process. Reps interleave per backend; the
        // headline run above folds in as one more rep of its backend.
        let (mut heap_seq_jps, mut wheel_seq_jps) =
            ab_timer_backends(&paper_ensemble, paper_jobs, &s, false, PAPER_REPS);
        match cfg.timer_backend {
            TimerBackend::Heap => heap_seq_jps = heap_seq_jps.max(seq_jps),
            TimerBackend::Wheel => wheel_seq_jps = wheel_seq_jps.max(seq_jps),
        }
        eprintln!(
            "  sequential timer A/B: heap {heap_seq_jps:.0} jobs/s, wheel {wheel_seq_jps:.0} \
             jobs/s (wheel/heap {:.3})",
            wheel_seq_jps / heap_seq_jps
        );
        if wheel_seq_jps < heap_seq_jps * (1.0 - WHEEL_REGRESSION_TOLERANCE) {
            wheel_failure = Some((wheel_seq_jps, heap_seq_jps));
        }
        s.timer_backend = cfg.timer_backend;
        s.shards = 4;
        s.threads = 0;
        let (par_wall, par_jps) =
            best_jobs_per_sec(&paper_ensemble, paper_jobs, &s, true, PAPER_REPS);
        eprintln!("  parallel shards=4:   {par_wall:.3}s ({par_jps:.0} jobs/s)");
        let rss = peak_rss_mb();
        match rss {
            Some(mb) => eprintln!("  peak RSS: {mb:.1} MiB"),
            None => eprintln!("  peak RSS: unavailable (no /proc/self/status)"),
        }
        paper_json = format!(
            ",\n  \"paper_ensemble\": {{\n    \"workflows\": {workflows},\n    \
             \"montage_degree\": 6.0,\n    \"jobs_per_workflow\": {per_wf},\n    \
             \"jobs_total\": {total},\n    \"nodes\": {PAPER_NODES},\n    \
             \"vcpus_total\": {vcpus},\n    \"reps\": {PAPER_REPS},\n    \
             \"sequential_best_wall_secs\": {seq_wall:.6},\n    \
             \"jobs_per_sec\": {seq_jps:.1},\n    \
             \"sequential_heap_jobs_per_sec\": {heap_seq_jps:.1},\n    \
             \"sequential_wheel_jobs_per_sec\": {wheel_seq_jps:.1},\n    \
             \"parallel_shards_4_jobs_per_sec\": {par_jps:.1},\n    \
             \"peak_rss_mb\": {rss_str}\n  }}",
            workflows = cfg.paper_workflows,
            per_wf = paper_wf.job_count(),
            total = paper_jobs,
            vcpus = C3_8XLARGE.vcpus as usize * PAPER_NODES,
            rss_str = rss.map_or_else(|| String::from("null"), |mb| format!("{mb:.1}")),
        );
        // The ceiling verdict is deferred until after the report is
        // written so a failing run still leaves its numbers on disk.
        if let Some(ceiling) = cfg.max_paper_rss_mb {
            match rss {
                Some(mb) if mb > ceiling => rss_failure = Some((mb, ceiling)),
                Some(_) => eprintln!("  peak RSS within {ceiling:.1} MiB ceiling"),
                None => eprintln!("  peak RSS ceiling skipped: measurement unavailable"),
            }
        }
    }

    // Fault-plane microbenchmark: the lease table's admission fence is
    // on the ack hot path, so its op rate and counters are tracked in
    // every report (quick runs use a lighter churn).
    let fault_rounds = if cfg.quick { 200 } else { 2000 };
    let (lease_ops, lease_ops_per_sec, fault_stats) = fault_plane_exercise(fault_rounds);
    eprintln!(
        "fault plane: {lease_ops} lease ops in {fault_rounds} rounds ({lease_ops_per_sec:.0} ops/s), \
         {} expired, {} requeued, {} fenced, {} drains",
        fault_stats.workers_expired,
        fault_stats.jobs_requeued_on_expiry,
        fault_stats.stale_acks_rejected,
        fault_stats.drains_completed,
    );
    let fault_json = format!(
        ",\n  \"fault_plane\": {{\n    \"rounds\": {fault_rounds},\n    \
         \"lease_ops\": {lease_ops},\n    \
         \"lease_ops_per_sec\": {lease_ops_per_sec:.1},\n    \
         \"workers_expired\": {},\n    \
         \"jobs_requeued_on_expiry\": {},\n    \
         \"stale_acks_rejected\": {},\n    \
         \"drains_completed\": {}\n  }}",
        fault_stats.workers_expired,
        fault_stats.jobs_requeued_on_expiry,
        fault_stats.stale_acks_rejected,
        fault_stats.drains_completed,
    );

    let reps_json = wall_secs.iter().map(|s| format!("{s:.6}")).collect::<Vec<_>>().join(", ");
    let json = format!(
        r#"{{
  "benchmark": "ensemble_hotpath",
  "mode": "{mode}",
  "shards": {shards},
  "effective_shards": {eff_shards},
  "threads": {threads},
  "effective_cores": {cores},
  "workload": {{
    "workflows": {workflows},
    "montage_degree": {degree:.1},
    "jobs_per_workflow": {per_wf},
    "jobs_total": {total}
  }},
  "cluster": {{
    "instance": "{instance}",
    "nodes": {nodes},
    "vcpus_total": {vcpus}
  }},
  "reps": {reps},
  "wall_secs": [{reps_json}],
  "median_wall_secs": {median:.6},
  "best_wall_secs": {min_wall:.6},
  "jobs_per_sec": {jps:.1},
  "sim_makespan_secs": {makespan:.1},
  "engine": {{
    "jobs_dispatched": {dispatched},
    "jobs_completed": {completed},
    "resubmissions": {resub},
    "duplicate_completions": {dups}
  }}{fault}{timer}{wire}{sweep}{paper}
}}
"#,
        fault = fault_json,
        timer = timer_json,
        wire = wire_json,
        mode = if cfg.quick { "quick" } else { "full" },
        shards = cfg.shards,
        eff_shards = last.effective_shards,
        threads = cfg.threads,
        cores = effective_cores,
        sweep = sweep_json,
        paper = paper_json,
        workflows = cfg.workflows,
        degree = cfg.degree,
        per_wf = workflow.job_count(),
        total = total_jobs,
        instance = C3_8XLARGE.name,
        nodes = cfg.nodes,
        vcpus = C3_8XLARGE.vcpus as usize * cfg.nodes,
        reps = cfg.reps,
        median = median,
        min_wall = min_wall,
        jps = jobs_per_sec,
        makespan = last.makespan_secs,
        dispatched = last.engine.dispatches,
        completed = last.engine.jobs_completed,
        resub = last.engine.resubmissions,
        dups = last.engine.duplicate_completions,
    );
    std::fs::write(&cfg.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    });
    eprintln!("wrote {}", cfg.out);

    if let Some((mb, ceiling)) = rss_failure {
        eprintln!("FAIL: peak RSS {mb:.1} MiB exceeds ceiling {ceiling:.1} MiB");
        std::process::exit(1);
    }

    if let Some((wheel, heap)) = wheel_failure {
        eprintln!(
            "FAIL: wheel backend {wheel:.0} jobs/s fell more than {:.0}% below the heap's \
             {heap:.0} jobs/s measured in the same process",
            WHEEL_REGRESSION_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }

    if let Some(baseline_path) = &cfg.check {
        let baseline = baseline_jobs_per_sec(baseline_path);
        let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
        let ratio = jobs_per_sec / baseline;
        eprintln!(
            "check: {jobs_per_sec:.0} jobs/s vs baseline {baseline:.0} \
             ({:.1}% of baseline, floor {floor:.0})",
            ratio * 100.0
        );
        if jobs_per_sec < floor {
            eprintln!(
                "FAIL: hot-path throughput regressed more than {:.0}% below {baseline_path}",
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("check passed");
    }
}

#[cfg(test)]
mod tests {
    use dewe_montage::{MontageConfig, MontageShape};

    /// The default (tracked) workload: generated job count must match the
    /// closed-form shape the testkit's scenario generator reasons about.
    #[test]
    fn tracked_workload_matches_montage_shape() {
        for degree in [2.0, 6.0] {
            let cfg = MontageConfig::degree(degree);
            let shape = MontageShape::for_degree(degree);
            assert_eq!(cfg.shape(), shape);
            assert_eq!(
                cfg.build().job_count(),
                shape.total_jobs,
                "Montage {degree:.1}deg generator drifted from MontageShape"
            );
        }
    }

    /// The paper-ensemble section reports "200 x 8,586 = 1,717,200 jobs";
    /// both factors come from dewe-montage, never from bench-local
    /// constants, so the headline scale can't silently change.
    #[test]
    fn paper_ensemble_scale_derives_from_paper_constants() {
        assert_eq!(
            MontageShape::for_degree(6.0).total_jobs,
            MontageConfig::PAPER_6DEG_JOBS,
            "6.0deg shape drifted from the paper's reference job count"
        );
        assert_eq!(200 * MontageConfig::PAPER_6DEG_JOBS, 1_717_200);
    }
}
