//! `hotpath` — end-to-end master hot-path throughput.
//!
//! Runs a Montage ensemble through the discrete-event runtime and reports
//! jobs simulated per second — the number that bounds how fast the paper's
//! large-scale experiments (up to 1.7 million jobs) reproduce. The default
//! workload is the tracked configuration: 20 × Montage 2.0° (the paper's
//! §V.A workflow) on four c3.8xlarge nodes.
//!
//! ```text
//! hotpath [--quick] [--shards <n>] [--threads <n>] [--out <path>]
//!         [--check <baseline.json>]
//! ```
//!
//! `--quick` shrinks the run (5 workflows, 3 reps) for smoke testing;
//! tracked numbers in `BENCH_hotpath.json` come from the full mode.
//!
//! `--shards <n>` runs the measured reps through the threaded sharded
//! runner (`run_ensemble_sharded`) instead of the single engine, and
//! `--threads <n>` caps its worker threads (0 = one per shard). Full
//! (non-quick) runs additionally sweep shards = 1/2/4/8, measuring each
//! count both sequentially (single-threaded sharded facade) and in
//! parallel (one shard sub-sim per thread), and record both throughputs
//! in the report's `shard_sweep` array plus the shards=4 parallel/
//! sequential ratio as `parallel_speedup_shards_4`.
//!
//! `--check <baseline.json>` turns the run into a regression gate: after
//! measuring, compare against the `jobs_per_sec` recorded in the baseline
//! file and exit non-zero if throughput fell more than 20% below it. The
//! gate is always a like-for-like sequential shards=1 comparison, so
//! `--shards`/`--threads` are rejected alongside it.
//! CI runs `hotpath --quick --check BENCH_hotpath.json` on every push so
//! a hot-path regression fails the build instead of landing silently.

use std::sync::Arc;
use std::time::Instant;

use dewe_core::sim::{run_ensemble, run_ensemble_sharded, SimRunConfig};
use dewe_dag::Workflow;
use dewe_montage::MontageConfig;
use dewe_simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

struct Config {
    workflows: usize,
    degree: f64,
    nodes: usize,
    reps: usize,
    quick: bool,
    shards: usize,
    threads: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Config {
    let mut quick = false;
    let mut shards = 1usize;
    let mut threads = 0usize;
    let mut out = String::from("BENCH_hotpath.json");
    let mut check = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--shards" => {
                shards =
                    args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                        || {
                            eprintln!("--shards requires a positive integer");
                            std::process::exit(2);
                        },
                    )
            }
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads requires a non-negative integer (0 = one per shard)");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            "--check" => {
                check = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check requires a baseline json path");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`\n\
                     usage: hotpath [--quick] [--shards <n>] [--threads <n>] [--out <path>] \
                     [--check <baseline.json>]"
                );
                std::process::exit(2);
            }
        }
    }
    if check.is_some() && (shards != 1 || threads != 0) {
        // The tracked baseline is a sequential shards=1 number; gating a
        // sharded or threaded run against it would compare different
        // machines.
        eprintln!("--check gates the sequential shards=1 hot path; drop --shards/--threads");
        std::process::exit(2);
    }
    if quick {
        Config { workflows: 5, degree: 2.0, nodes: 4, reps: 3, quick, shards, threads, out, check }
    } else {
        Config {
            workflows: 20,
            degree: 2.0,
            nodes: 4,
            reps: 15,
            quick,
            shards,
            threads,
            out,
            check,
        }
    }
}

/// Pull `"jobs_per_sec": <number>` out of a tracked baseline file without
/// a JSON dependency (the field is emitted by this binary, so the shape is
/// under our control).
fn baseline_jobs_per_sec(path: &str) -> f64 {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    let Some(pos) = text.find("\"jobs_per_sec\"") else {
        eprintln!("baseline {path} has no jobs_per_sec field");
        std::process::exit(2);
    };
    let rest = &text[pos..];
    let value = rest
        .split(':')
        .nth(1)
        .and_then(|v| v.split([',', '\n', '}']).next())
        .map(str::trim)
        .and_then(|v| v.parse::<f64>().ok());
    match value {
        Some(v) if v > 0.0 => v,
        _ => {
            eprintln!("baseline {path} has a malformed jobs_per_sec field");
            std::process::exit(2);
        }
    }
}

/// Maximum tolerated throughput regression vs the checked-in baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

fn main() {
    let cfg = parse_args();
    let workflow = Arc::new(MontageConfig::degree(cfg.degree).build());
    let ensemble: Vec<Arc<Workflow>> = (0..cfg.workflows).map(|_| Arc::clone(&workflow)).collect();
    let total_jobs = workflow.job_count() * cfg.workflows;
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: cfg.nodes, storage: StorageConfig::LocalDisk };
    let mut sim = SimRunConfig::new(cluster);
    sim.shards = cfg.shards;
    sim.threads = cfg.threads;
    let measure = |sim: &SimRunConfig| {
        if sim.shards > 1 {
            run_ensemble_sharded(&ensemble, sim)
        } else {
            run_ensemble(&ensemble, sim)
        }
    };
    let effective_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "hotpath: {} x montage {:.1}deg ({} jobs) on {} x {}, {} reps, {} shard(s), \
         {} thread(s), {} core(s){}",
        cfg.workflows,
        cfg.degree,
        total_jobs,
        cfg.nodes,
        C3_8XLARGE.name,
        cfg.reps,
        cfg.shards,
        cfg.threads,
        effective_cores,
        if cfg.quick { " (quick)" } else { "" }
    );

    // Warm caches and page in the workload before timing.
    let warm = measure(&sim);
    assert!(warm.completed, "ensemble must complete");

    let mut wall_secs = Vec::with_capacity(cfg.reps);
    let mut last = warm;
    for rep in 0..cfg.reps {
        let start = Instant::now();
        let report = measure(&sim);
        let secs = start.elapsed().as_secs_f64();
        assert!(report.completed, "ensemble must complete");
        assert_eq!(report.engine.jobs_completed as usize, total_jobs);
        eprintln!("  rep {:>2}: {:.3}s  ({:.0} jobs/s)", rep + 1, secs, total_jobs as f64 / secs);
        wall_secs.push(secs);
        last = report;
    }

    let mut sorted = wall_secs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite wall time"));
    let median = sorted[sorted.len() / 2];
    let jobs_per_sec = total_jobs as f64 / median;
    eprintln!("median: {median:.3}s -> {jobs_per_sec:.0} jobs simulated/sec");

    // Full runs sweep the shard-count knob so the tracked report shows
    // how throughput scales with per-shard engine partitioning — both
    // sequentially (sharded facade, one OS thread) and in parallel (one
    // shard sub-sim per worker thread).
    let mut sweep_json = String::new();
    if !cfg.quick {
        const SWEEP_REPS: usize = 5;
        let median_jps = |s: &SimRunConfig, sharded: bool| {
            let mut walls = Vec::with_capacity(SWEEP_REPS);
            for _ in 0..SWEEP_REPS {
                let start = Instant::now();
                let report = if sharded {
                    run_ensemble_sharded(&ensemble, s)
                } else {
                    run_ensemble(&ensemble, s)
                };
                let secs = start.elapsed().as_secs_f64();
                assert!(report.completed, "ensemble must complete");
                walls.push(secs);
            }
            walls.sort_by(|a, b| a.partial_cmp(b).expect("finite wall time"));
            let med = walls[walls.len() / 2];
            (med, total_jobs as f64 / med)
        };
        let mut entries = Vec::new();
        let mut speedup_4 = None;
        for n in [1usize, 2, 4, 8] {
            // The threaded runner clamps shards to the node count: each
            // shard needs at least one simulated node (and one workflow).
            let effective = n.min(cfg.nodes).min(cfg.workflows);
            if effective != n {
                eprintln!(
                    "sweep: shards={n} capped to {effective} \
                     ({} nodes, {} workflows)",
                    cfg.nodes, cfg.workflows
                );
            }
            let mut s = sim.clone();
            s.shards = n;
            s.threads = 1; // sequential: sharded facade on one thread
            let (seq_med, seq_jps) = median_jps(&s, false);
            s.threads = 0; // parallel: one sub-sim thread per shard
            let (par_med, par_jps) = median_jps(&s, true);
            if n == 4 {
                speedup_4 = Some(par_jps / seq_jps);
            }
            eprintln!(
                "sweep shards={n} (effective {effective}): sequential {seq_med:.3}s \
                 ({seq_jps:.0} jobs/s), parallel {par_med:.3}s ({par_jps:.0} jobs/s)"
            );
            entries.push(format!(
                "    {{\"shards\": {n}, \"effective_shards\": {effective}, \
                 \"sequential_median_wall_secs\": {seq_med:.6}, \
                 \"sequential_jobs_per_sec\": {seq_jps:.1}, \
                 \"parallel_median_wall_secs\": {par_med:.6}, \
                 \"parallel_jobs_per_sec\": {par_jps:.1}}}"
            ));
        }
        sweep_json = format!(
            ",\n  \"parallel_speedup_shards_4\": {:.3},\n  \"shard_sweep\": [\n{}\n  ]",
            speedup_4.expect("sweep covers shards=4"),
            entries.join(",\n")
        );
    }

    let reps_json = wall_secs.iter().map(|s| format!("{s:.6}")).collect::<Vec<_>>().join(", ");
    let json = format!(
        r#"{{
  "benchmark": "ensemble_hotpath",
  "mode": "{mode}",
  "shards": {shards},
  "threads": {threads},
  "effective_cores": {cores},
  "workload": {{
    "workflows": {workflows},
    "montage_degree": {degree:.1},
    "jobs_per_workflow": {per_wf},
    "jobs_total": {total}
  }},
  "cluster": {{
    "instance": "{instance}",
    "nodes": {nodes},
    "vcpus_total": {vcpus}
  }},
  "reps": {reps},
  "wall_secs": [{reps_json}],
  "median_wall_secs": {median:.6},
  "jobs_per_sec": {jps:.1},
  "sim_makespan_secs": {makespan:.1},
  "engine": {{
    "jobs_dispatched": {dispatched},
    "jobs_completed": {completed},
    "resubmissions": {resub},
    "duplicate_completions": {dups}
  }}{sweep}
}}
"#,
        mode = if cfg.quick { "quick" } else { "full" },
        shards = cfg.shards,
        threads = cfg.threads,
        cores = effective_cores,
        sweep = sweep_json,
        workflows = cfg.workflows,
        degree = cfg.degree,
        per_wf = workflow.job_count(),
        total = total_jobs,
        instance = C3_8XLARGE.name,
        nodes = cfg.nodes,
        vcpus = C3_8XLARGE.vcpus as usize * cfg.nodes,
        reps = cfg.reps,
        median = median,
        jps = jobs_per_sec,
        makespan = last.makespan_secs,
        dispatched = last.engine.dispatches,
        completed = last.engine.jobs_completed,
        resub = last.engine.resubmissions,
        dups = last.engine.duplicate_completions,
    );
    std::fs::write(&cfg.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    });
    eprintln!("wrote {}", cfg.out);

    if let Some(baseline_path) = &cfg.check {
        let baseline = baseline_jobs_per_sec(baseline_path);
        let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
        let ratio = jobs_per_sec / baseline;
        eprintln!(
            "check: {jobs_per_sec:.0} jobs/s vs baseline {baseline:.0} \
             ({:.1}% of baseline, floor {floor:.0})",
            ratio * 100.0
        );
        if jobs_per_sec < floor {
            eprintln!(
                "FAIL: hot-path throughput regressed more than {:.0}% below {baseline_path}",
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("check passed");
    }
}
