//! Criterion microbenchmarks for the reproduction's hot paths.
//!
//! The table/figure harness is the `repro` binary; these benches measure
//! the library itself: DAG construction and traversal, broker throughput,
//! the fair-share resource, and end-to-end simulated execution throughput
//! (jobs simulated per second — what bounds how fast the 1.7-million-job
//! ensemble reproduces).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::sync::Arc;

use dewe_baseline::{run_ensemble as run_baseline, BaselineConfig};
use dewe_core::sim::{run_ensemble, SimRunConfig};
use dewe_dag::{DependencyTracker, LevelProfile, Workflow};
use dewe_montage::MontageConfig;
use dewe_mq::Topic;
use dewe_simcloud::{ClusterConfig, FairShare, SimTime, StorageConfig, C3_8XLARGE};

fn montage(degree: f64) -> Arc<Workflow> {
    Arc::new(MontageConfig::degree(degree).build())
}

fn bench_dag(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag");
    let wf = montage(2.0);
    g.throughput(Throughput::Elements(wf.job_count() as u64));

    g.bench_function("montage_generate_2deg", |b| b.iter(|| MontageConfig::degree(2.0).build()));
    g.bench_function("level_profile_2deg", |b| b.iter(|| LevelProfile::of(&wf)));
    g.bench_function("tracker_full_drain_2deg", |b| {
        b.iter_batched(
            || DependencyTracker::new(&wf),
            |mut t| {
                loop {
                    let ready = t.take_ready();
                    if ready.is_empty() {
                        break;
                    }
                    for j in ready {
                        t.mark_running(j);
                        t.complete_in(&wf, j);
                    }
                }
                assert!(t.is_complete());
            },
            BatchSize::SmallInput,
        )
    });
    let text = dewe_dag::write_workflow(&wf);
    g.bench_function("parse_text_format_2deg", |b| {
        b.iter(|| dewe_dag::parse_workflow(&text).unwrap())
    });
    g.finish();
}

fn bench_mq(c: &mut Criterion) {
    let mut g = c.benchmark_group("mq");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("publish_pull_10k", |b| {
        b.iter(|| {
            let t: Topic<u64> = Topic::new();
            for i in 0..N {
                t.publish(i);
            }
            let mut sum = 0;
            while let Some(v) = t.try_pull() {
                sum += v;
            }
            assert_eq!(sum, N * (N - 1) / 2);
        })
    });
    g.bench_function("contended_4x4_10k", |b| {
        b.iter(|| {
            let t: Topic<u64> = Topic::new();
            std::thread::scope(|s| {
                for p in 0..4 {
                    let t = t.clone();
                    s.spawn(move || {
                        for i in 0..N / 4 {
                            t.publish(p * (N / 4) + i);
                        }
                    });
                }
                let mut consumers = Vec::new();
                for _ in 0..4 {
                    let t = t.clone();
                    consumers.push(s.spawn(move || {
                        let mut got = 0u64;
                        loop {
                            match t.pull_timeout(std::time::Duration::from_millis(50)) {
                                Some(_) => got += 1,
                                None => break got,
                            }
                        }
                    }));
                }
                let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
                assert_eq!(total, N);
            });
        })
    });
    g.finish();
}

fn bench_fairshare(c: &mut Criterion) {
    let mut g = c.benchmark_group("fairshare");
    const FLOWS: u64 = 1_000;
    g.throughput(Throughput::Elements(FLOWS));
    g.bench_function("churn_1k_flows", |b| {
        b.iter(|| {
            let mut r = FairShare::new(1e9);
            let mut clock = SimTime::ZERO;
            for i in 0..FLOWS {
                r.start(clock, 1e6 + (i % 13) as f64 * 1e5, i);
                clock += SimTime(1000);
            }
            let mut done = 0;
            while let Some(at) = r.next_completion(clock) {
                clock = at;
                done += r.pop_completed(clock).len();
            }
            assert_eq!(done as u64, FLOWS);
        })
    });
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines");
    g.sample_size(10);
    let wf = montage(2.0);
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };
    g.throughput(Throughput::Elements(wf.job_count() as u64));
    g.bench_function("dewe_sim_2deg_workflow", |b| {
        b.iter(|| {
            let report = run_ensemble(&[Arc::clone(&wf)], &SimRunConfig::new(cluster));
            assert!(report.completed);
        })
    });
    g.bench_function("baseline_sim_2deg_workflow", |b| {
        b.iter(|| {
            let report = run_baseline(&[Arc::clone(&wf)], &BaselineConfig::new(cluster));
            assert!(report.completed);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dag, bench_mq, bench_fairshare, bench_engines);
criterion_main!(benches);
