//! The four execution paths the oracle runs every scenario through.

pub mod baseline;
pub mod engine;
pub mod realtime;
pub mod sim;

pub use engine::EngineDriverConfig;
