//! Driver for the discrete-event simulation runtime — the oracle's
//! fourth path.
//!
//! Unlike the virtual-time engine driver (which plays transport and
//! worker pool itself), this path hands the scenario to the *production*
//! sim stack: [`dewe_core::sim::run_ensemble`] over the
//! `dewe-simcloud` cluster model, with its own slot pool, I/O model,
//! timeout scans, fault injection, message chaos, and scripted-failure
//! plumbing. The sim is fully deterministic, so it joins the engine and
//! baseline paths in the shrinker's replay set.
//!
//! Scenario knobs map one-to-one: fault plans cross the
//! [`FaultPlan::node_faults`] bridge (master kills have no sim-side
//! analogue and are dropped there), lossy chaos becomes the sim's
//! keyed drop/duplication injection (the sim transport has no latency,
//! so delay-only chaos is a no-op), and scripted failures ride the
//! sim's `failure_script`. Observations come from the per-job lifecycle
//! trace: successful attempts become `Started`/`Finished` events ordered
//! by simulated time (finishes before starts on ties, so a parent's
//! completion precedes a child dispatched in the same instant), and the
//! completion set is derived from the surviving finish events.
//!
//! [`FaultPlan::node_faults`]: dewe_core::fault::FaultPlan::node_faults

use std::collections::BTreeSet;

use dewe_core::sim::{run_ensemble, ScriptedFailure, SimRunConfig, SubmissionPlan};
use dewe_core::RetryPolicy;
use dewe_mq::ChaosConfig;
use dewe_simcloud::{ClusterConfig, SharedFsKind, StorageConfig, C3_8XLARGE};

use crate::invariant::{Event, PathKind, PathOutcome};
use crate::paths::EngineDriverConfig;
use crate::scenario::Scenario;

/// Virtual-time stall guard. Clean scenarios settle in under a hundred
/// virtual seconds; lossy ones bound recovery by the 30 s job timeout
/// per lost message. Anything still unsettled here is a genuine stall.
const SIM_HORIZON_SECS: f64 = 50_000.0;

fn sim_config(scenario: &Scenario) -> SimRunConfig {
    let lossy = scenario.chaos.is_lossy();
    let faulty = !scenario.faults.is_empty();
    let mut cfg = SimRunConfig::new(ClusterConfig {
        instance: C3_8XLARGE,
        nodes: scenario.workers,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    });
    cfg.slots_per_node = Some(scenario.slots_per_worker as u32);
    // Same timeout ladder as the engine path: generous against ≤1 s job
    // runtimes, tight enough that drop/crash recovery converges fast.
    cfg.default_timeout_secs = if lossy {
        30.0
    } else if faulty {
        8.0
    } else {
        1000.0
    };
    cfg.checkout_timeout_secs = lossy.then_some(5.0);
    cfg.timeout_scan_secs = if faulty || lossy { 1.0 } else { 5.0 };
    cfg.submission = SubmissionPlan::Interval(scenario.submission_interval_secs);
    cfg.per_job_overhead_secs = 0.0;
    cfg.retry = RetryPolicy {
        max_attempts: scenario.max_attempts,
        backoff_base_secs: scenario.backoff_base_secs,
        backoff_factor: 2.0,
        backoff_max_secs: 60.0,
        jitter_frac: 0.0,
        seed: scenario.seed,
    };
    cfg.failure_script = scenario
        .failures
        .iter()
        .map(|f| ScriptedFailure {
            workflow: f.workflow,
            job: f.job,
            failing_attempts: f.failing_attempts,
        })
        .collect();
    cfg.faults = scenario.faults.node_faults();
    cfg.chaos = lossy.then_some(ChaosConfig {
        seed: scenario.chaos.seed,
        drop_prob: scenario.chaos.drop_prob,
        dup_prob: scenario.chaos.dup_prob,
        delay_prob: 0.0,
        delay_secs: 0.0,
    });
    cfg.record_trace = true;
    cfg.horizon_secs = Some(SIM_HORIZON_SECS);
    // Sharded scenarios run the sharded-engine facade (and, with
    // `parallel`, the barrier-mode parallel driver) under the sim's
    // cluster model — the same invariance the engine path checks, now
    // against the I/O-modeling runtime.
    cfg.shards = scenario.shards;
    cfg.threads = if scenario.parallel { scenario.shards } else { 0 };
    cfg.timer_backend = scenario.timer_backend;
    cfg
}

/// Execute the scenario through the discrete-event sim runtime.
pub fn run(scenario: &Scenario, cfg: &EngineDriverConfig) -> PathOutcome {
    let report = run_ensemble(&scenario.build_workflows(), &sim_config(scenario));

    // Rebuild an ordered event log from the lifecycle trace. Ties sort
    // finishes first so a parent completing at the exact instant its
    // child starts reads in dependency order; the trace index breaks
    // remaining ties deterministically.
    let trace = report.trace.as_ref().expect("sim path always records a trace");
    let mut timeline: Vec<(f64, u8, usize, Event)> = Vec::with_capacity(2 * trace.len());
    for (i, t) in trace.events().iter().enumerate() {
        timeline.push((t.started, 1, i, Event::Started { job: (t.workflow, t.job) }));
        timeline.push((t.finished, 0, i, Event::Finished { job: (t.workflow, t.job) }));
    }
    timeline.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    // The injected-bug hook: silently discard the n-th completion event,
    // as if the sim lost a finish record — the oracle must notice.
    let mut events = Vec::with_capacity(timeline.len());
    let mut finish_no = 0u64;
    for (_, _, _, ev) in timeline {
        if matches!(ev, Event::Finished { .. }) {
            let dropped = cfg.sim_drop_nth_completion == Some(finish_no);
            finish_no += 1;
            if dropped {
                continue;
            }
        }
        events.push(ev);
    }

    let completed: BTreeSet<(u32, u32)> = events
        .iter()
        .filter_map(|ev| match *ev {
            Event::Finished { job } => Some(job),
            Event::Started { .. } => None,
        })
        .collect();

    let stats = report.engine;
    let settled = stats.workflows_completed + stats.workflows_abandoned == scenario.workflows.len();
    let note = (!settled).then(|| {
        format!(
            "sim horizon {SIM_HORIZON_SECS}s expired at t={:.3}: {} of {} workflows settled",
            report.makespan_secs,
            stats.workflows_completed + stats.workflows_abandoned,
            scenario.workflows.len()
        )
    });
    PathOutcome {
        kind: PathKind::Sim,
        completed,
        events,
        stats: Some(stats),
        makespan_secs: Some(report.makespan_secs),
        settled,
        master_stats: None,
        liveness_recovery: None,
        note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant;

    #[test]
    fn clean_scenario_settles_and_conforms() {
        let s = Scenario::generate(0); // class 0: clean
        let out = run(&s, &EngineDriverConfig::default());
        assert!(out.settled, "{:?}", out.note);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn sim_path_is_deterministic() {
        let s = Scenario::generate(7); // class 1: chaos
        let a = run(&s, &EngineDriverConfig::default());
        let b = run(&s, &EngineDriverConfig::default());
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.makespan_secs, b.makespan_secs);
    }

    #[test]
    fn failure_scenario_dead_letters_as_expected() {
        let s = Scenario::generate(2); // class 2: scripted failures
        let out = run(&s, &EngineDriverConfig::default());
        assert!(out.settled, "{:?}", out.note);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(out.completed, s.expected_outcome().completed);
    }

    #[test]
    fn fault_scenario_recovers_and_conforms() {
        let s = Scenario::generate_fault(1);
        let out = run(&s, &EngineDriverConfig::default());
        assert!(out.settled, "{:?}", out.note);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dropped_completion_mutation_is_caught() {
        let s = Scenario::generate(0);
        let out =
            run(&s, &EngineDriverConfig { sim_drop_nth_completion: Some(0), ..Default::default() });
        let v = invariant::check(&s, &out);
        assert!(v.iter().any(|m| m.contains("lost job")), "{v:?}");
    }
}
