//! Driver for the modeled Pegasus/DAGMan/Condor baseline scheduler.
//!
//! The baseline models neither chaos nor worker failures, so its role in
//! the oracle is structural: with overheads zeroed it must execute every
//! job of the ensemble exactly once, in dependency order, with a makespan
//! no smaller than the cpu-weighted critical path. Its ordered
//! [`BaselineEvent`] log (the `record_events` instrumentation) is mapped
//! onto the shared [`Event`] vocabulary for the invariant suite.

use std::collections::BTreeSet;

use dewe_baseline::{run_ensemble, BaselineConfig, BaselineEvent};
use dewe_simcloud::{ClusterConfig, SharedFsKind, StorageConfig, C3_8XLARGE};

use crate::invariant::{Event, PathKind, PathOutcome};
use crate::scenario::Scenario;

/// Execute the scenario through the baseline scheduler.
pub fn run(scenario: &Scenario) -> PathOutcome {
    let cluster = ClusterConfig {
        instance: C3_8XLARGE,
        nodes: scenario.workers,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    };
    let mut cfg = BaselineConfig::new(cluster);
    // Zero the Pegasus-stack overheads: the oracle compares schedules,
    // not the paper's performance gap.
    cfg.slots_per_node = scenario.slots_per_worker as u32;
    cfg.negotiation_interval_secs = 0.25;
    cfg.per_job_overhead_secs = 0.0;
    cfg.write_amplification = 1.0;
    cfg.read_amplification = 1.0;
    cfg.log_bytes_per_job = 0.0;
    cfg.planning_secs_per_workflow = 0.0;
    cfg.submission_interval_secs = scenario.submission_interval_secs;
    cfg.record_events = true;

    let report = run_ensemble(&scenario.build_workflows(), &cfg);

    let mut events = Vec::new();
    let mut completed = BTreeSet::new();
    for ev in report.events.as_deref().unwrap_or(&[]) {
        match *ev {
            BaselineEvent::Started { job, .. } => {
                events.push(Event::Started { job: (job.workflow.0, job.job.0) });
            }
            BaselineEvent::Finished { job, .. } => {
                let id = (job.workflow.0, job.job.0);
                events.push(Event::Finished { job: id });
                completed.insert(id);
            }
        }
    }
    PathOutcome {
        kind: PathKind::Baseline,
        completed,
        events,
        stats: None,
        makespan_secs: Some(report.makespan_secs),
        settled: report.completed,
        // The baseline models no workers to kill and no master to
        // restart: fault plans are structurally inert here.
        master_stats: None,
        liveness_recovery: None,
        note: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant;

    #[test]
    fn clean_scenario_conforms() {
        let s = Scenario::generate(0);
        let out = run(&s);
        assert!(out.settled);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn failure_scenario_still_runs_everything() {
        // The baseline has no failure model: even a class-2 scenario must
        // execute all jobs exactly once.
        let s = Scenario::generate(2);
        let out = run(&s);
        assert!(out.settled);
        assert_eq!(out.completed.len(), s.total_jobs());
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
    }
}
