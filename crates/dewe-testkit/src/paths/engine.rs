//! Deterministic virtual-time driver for the sans-IO engines — the
//! oracle's reference path. Generic over [`EngineCore`], it drives the
//! plain [`EnsembleEngine`] or, when the scenario asks for
//! `shards > 1`, a [`ShardedEngine`] — so every differential sweep also
//! checks shard-count invariance for free.
//!
//! A discrete-event loop plays the roles of transport and worker pool:
//! dispatch actions become delivery events, deliveries occupy worker
//! slots, executions take their modeled `cpu_secs` of virtual time, and
//! acknowledgments travel back as events of their own. Chaos is applied
//! by the same pure [`ChaosDecider`] the other paths use, but keyed by
//! *message identity* (`workflow`, `job`, `attempt`, `kind`) rather than
//! publish order, so the fault schedule is a function of the scenario
//! alone — independent of event interleaving and re-runs.
//!
//! Between transport events the driver lets the engine's own clock run:
//! whenever the next engine deadline (job timeout or deferred retry)
//! precedes the next transport event, the driver advances virtual time to
//! the deadline and scans. A run with no pending events and no pending
//! deadlines that has not settled is a **stall** — the exact class of bug
//! (lost dispatch, stuck dependency) the oracle exists to catch.
//!
//! [`EnsembleEngine`]: dewe_core::EnsembleEngine
//! [`ShardedEngine`]: dewe_core::ShardedEngine

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

use dewe_core::fault::FaultEvent;
use dewe_core::{AckKind, AckMsg, DispatchMsg};
use dewe_core::{Action, EngineConfig, EngineCore, RetryPolicy};
use dewe_mq::chaos::{message_key, streams};
use dewe_mq::{ChaosConfig, ChaosDecider, Fault};

use crate::invariant::{Event, PathKind, PathOutcome};
use crate::scenario::Scenario;

/// Transport latency between any publish and its delivery, virtual
/// seconds. Small but nonzero so causality is visible in timestamps.
const EPS: f64 = 1e-3;

/// Abort threshold for runaway scenarios (a conforming 36-job scenario
/// settles in a few hundred events).
const STEP_CAP: usize = 200_000;

/// Knobs for deliberately mis-driving the engine — the oracle's own
/// self-test. A mutated run must produce violations, and the shrinker
/// must reduce them to a minimal repro.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineDriverConfig {
    /// Silently discard the n-th (0-based) dispatch action instead of
    /// delivering it: an injected "engine lost a job" bug.
    pub drop_nth_dispatch: Option<u64>,
    /// Silently discard the n-th (0-based) completion event observed on
    /// the **sim** path: an injected "sim lost a finish record" bug the
    /// oracle must flag and shrink (see `paths::sim`).
    pub sim_drop_nth_completion: Option<u64>,
}

enum Ev {
    Submit(usize),
    DispatchArrive(DispatchMsg),
    JobFinish { dispatch: DispatchMsg, fail: bool, worker: usize, epoch: u32 },
    AckArrive(AckMsg),
    Fault(FaultEvent),
    MasterRestart,
}

/// One simulated worker daemon: a pool of slots that can crash (jobs
/// evaporate unacked), drain (stops accepting), or stall (running jobs
/// freeze for the window).
struct SimWorker {
    slots_free: usize,
    alive: bool,
    draining: bool,
    /// Bumped on crash: a `JobFinish` carrying a stale epoch belongs to
    /// a job that died with the worker and is dropped silently.
    epoch: u32,
}

/// Engine inputs in processing order — the virtual-time analogue of the
/// master's write-ahead journal. On a master kill the driver rebuilds a
/// fresh engine by replaying this log and checks it reproduces the
/// killed engine's state exactly.
enum LoggedInput {
    Submit { idx: usize, at: f64 },
    Ack { ack: AckMsg, at: f64 },
    Scan { at: f64 },
}

struct Sched {
    at: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Sched {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Sched {}
impl PartialOrd for Sched {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sched {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.total_cmp(&other.at).then_with(|| self.seq.cmp(&other.seq))
    }
}

struct Driver<'a, E: EngineCore, F: Fn() -> E> {
    scenario: &'a Scenario,
    cfg: &'a EngineDriverConfig,
    built: Vec<std::sync::Arc<dewe_dag::Workflow>>,
    engine: E,
    /// Rebuilds an identically configured blank engine — the replacement
    /// master a `MasterKill` fault swaps in after replay.
    make: F,
    chaos: Option<ChaosDecider>,
    heap: BinaryHeap<Reverse<Sched>>,
    seq: u64,
    workers: Vec<SimWorker>,
    queue: VecDeque<DispatchMsg>,
    events: Vec<Event>,
    dispatch_counter: u64,
    actions: Vec<Action>,
    /// Every input the engine processed, for master-kill replay.
    input_log: Vec<LoggedInput>,
    /// True between a `MasterKill` fault and its `MasterRestart`.
    master_down: bool,
    /// Submissions and acks that arrived while the master was down; the
    /// replacement consumes them (bus-queued backlog) at restart.
    outage_backlog: Vec<LoggedInput>,
    restarts: u32,
    recovery_ok: bool,
}

fn job_key(d: &DispatchMsg) -> u64 {
    ((d.job.workflow.0 as u64) << 32) | d.job.job.0 as u64
}

impl<E: EngineCore, F: Fn() -> E> Driver<'_, E, F> {
    fn push(&mut self, at: f64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(Sched { at, seq: self.seq, ev }));
    }

    fn decide(&self, stream: u64, key: u64) -> Fault {
        match &self.chaos {
            Some(d) => d.decide(stream, key),
            None => Fault::Deliver,
        }
    }

    /// Route a dispatch action through chaos toward the worker pool.
    fn send_dispatch(&mut self, d: DispatchMsg, now: f64) {
        let n = self.dispatch_counter;
        self.dispatch_counter += 1;
        if self.cfg.drop_nth_dispatch == Some(n) {
            return; // the injected bug: the job silently never ships
        }
        let key = message_key(job_key(&d), d.attempt as u64, 0);
        match self.decide(streams::DISPATCH, key) {
            Fault::Drop => {}
            Fault::Duplicate => {
                self.push(now + EPS, Ev::DispatchArrive(d));
                self.push(now + 2.0 * EPS, Ev::DispatchArrive(d));
            }
            Fault::Delay(secs) => self.push(now + secs + EPS, Ev::DispatchArrive(d)),
            Fault::Deliver => self.push(now + EPS, Ev::DispatchArrive(d)),
        }
    }

    /// Route a worker acknowledgment through chaos back to the engine.
    fn send_ack(&mut self, ack: AckMsg, now: f64) {
        let pack = ((ack.job.workflow.0 as u64) << 32) | ack.job.job.0 as u64;
        let key = message_key(pack, ack.attempt as u64, 1 + ack.kind.code() as u64);
        match self.decide(streams::ACK, key) {
            Fault::Drop => {}
            Fault::Duplicate => {
                self.push(now + EPS, Ev::AckArrive(ack));
                self.push(now + 2.0 * EPS, Ev::AckArrive(ack));
            }
            Fault::Delay(secs) => self.push(now + secs + EPS, Ev::AckArrive(ack)),
            Fault::Deliver => self.push(now + EPS, Ev::AckArrive(ack)),
        }
    }

    /// First worker daemon that can accept a job right now.
    fn pick_worker(&self) -> Option<usize> {
        self.workers.iter().position(|w| w.alive && !w.draining && w.slots_free > 0)
    }

    /// A delivered dispatch begins executing on worker `w`.
    fn start_job(&mut self, d: DispatchMsg, w: usize, now: f64) {
        debug_assert!(self.workers[w].slots_free > 0);
        self.workers[w].slots_free -= 1;
        self.events.push(Event::Started { job: (d.job.workflow.0, d.job.job.0) });
        self.send_ack(AckMsg::new(d.job, w as u32, AckKind::Running, d.attempt), now);
        let spec = &self.scenario.workflows[d.job.workflow.index()].jobs[d.job.job.index()];
        // A stall freezes the worker: any job overlapping the window
        // finishes the whole stall later.
        let mut finish = now + spec.cpu_secs;
        for f in &self.scenario.faults.events {
            if let FaultEvent::WorkerStall { worker, stall_secs } = f.event {
                if worker as usize == w && now < f.at_secs + stall_secs && finish > f.at_secs {
                    finish += stall_secs;
                }
            }
        }
        let fail = d.attempt <= self.scenario.failing_attempts(d.job.workflow.0, d.job.job.0);
        let epoch = self.workers[w].epoch;
        self.push(finish, Ev::JobFinish { dispatch: d, fail, worker: w, epoch });
    }

    /// Start queued dispatches while any worker has capacity.
    fn drain_queue(&mut self, now: f64) {
        while !self.queue.is_empty() {
            let Some(w) = self.pick_worker() else { return };
            let d = self.queue.pop_front().expect("checked non-empty");
            self.start_job(d, w, now);
        }
    }

    /// Worker `w` dies: capacity vanishes and every running job's finish
    /// event is orphaned (stale epoch) — no ack is ever sent, so the
    /// engine's job timeout is the only way those attempts recover.
    fn crash_worker(&mut self, w: usize) {
        let worker = &mut self.workers[w];
        if !worker.alive {
            return;
        }
        worker.alive = false;
        worker.draining = false;
        worker.slots_free = 0;
        worker.epoch += 1;
    }

    /// Drain engine actions produced at `now`.
    fn process_actions(&mut self, now: f64) {
        let mut actions = std::mem::take(&mut self.actions);
        for action in actions.drain(..) {
            if let Action::Dispatch(d) = action {
                self.send_dispatch(d, now);
            }
        }
        self.actions = actions;
    }

    /// Feed one submission to the (live) engine, logging it for replay.
    fn ingest_submit(&mut self, idx: usize, now: f64) {
        let wf = std::sync::Arc::clone(&self.built[idx]);
        self.input_log.push(LoggedInput::Submit { idx, at: now });
        self.engine.submit_workflow(wf, now, &mut self.actions);
        self.process_actions(now);
    }

    /// Feed one acknowledgment to the (live) engine, logging it.
    fn ingest_ack(&mut self, ack: AckMsg, now: f64) {
        self.input_log.push(LoggedInput::Ack { ack, at: now });
        self.engine.on_ack(ack, now, &mut self.actions);
        self.process_actions(now);
    }

    /// Run a timeout scan on the (live) engine, logging it — scans
    /// mutate engine state (resubmissions, attempt bumps), so replay
    /// must reproduce them like any other input.
    fn ingest_scan(&mut self, now: f64) {
        self.input_log.push(LoggedInput::Scan { at: now });
        self.engine.check_timeouts(now, &mut self.actions);
        self.process_actions(now);
    }

    /// The `MasterKill` recovery: build a blank engine, replay the input
    /// log with original timestamps (discarding regenerated actions —
    /// every dispatch it re-derives already shipped before the kill, the
    /// virtual-time analogue of the realtime master's lease-held
    /// redispatch skip), and verify the replayed state is identical to
    /// the engine that died. Then drain the outage backlog into it.
    fn restart_master(&mut self, now: f64) {
        let mut fresh = (self.make)();
        let mut scratch = Vec::new();
        for input in &self.input_log {
            match *input {
                LoggedInput::Submit { idx, at } => {
                    fresh.submit_workflow(
                        std::sync::Arc::clone(&self.built[idx]),
                        at,
                        &mut scratch,
                    );
                }
                LoggedInput::Ack { ack, at } => fresh.on_ack(ack, at, &mut scratch),
                LoggedInput::Scan { at } => fresh.check_timeouts(at, &mut scratch),
            }
            scratch.clear();
        }
        let mut identical = fresh.stats() == self.engine.stats();
        for (w, wf) in self.scenario.workflows.iter().enumerate() {
            for j in 0..wf.jobs.len() {
                let id = dewe_dag::EnsembleJobId::new(
                    dewe_dag::WorkflowId(w as u32),
                    dewe_dag::JobId(j as u32),
                );
                identical &= fresh.job_state(id) == self.engine.job_state(id);
            }
        }
        self.restarts += 1;
        self.recovery_ok &= identical;
        self.engine = fresh;
        self.master_down = false;
        for input in std::mem::take(&mut self.outage_backlog) {
            match input {
                LoggedInput::Submit { idx, .. } => self.ingest_submit(idx, now),
                LoggedInput::Ack { ack, .. } => self.ingest_ack(ack, now),
                LoggedInput::Scan { .. } => unreachable!("scans are never buffered"),
            }
        }
    }

    fn handle(&mut self, ev: Ev, now: f64) {
        match ev {
            Ev::Submit(i) => {
                if self.master_down {
                    self.outage_backlog.push(LoggedInput::Submit { idx: i, at: now });
                } else {
                    self.ingest_submit(i, now);
                }
            }
            Ev::DispatchArrive(d) => {
                if let Some(w) = self.pick_worker() {
                    self.start_job(d, w, now);
                } else {
                    self.queue.push_back(d);
                }
            }
            Ev::JobFinish { dispatch, fail, worker, epoch } => {
                if !self.workers[worker].alive || self.workers[worker].epoch != epoch {
                    return; // the job died with its worker — no ack, ever
                }
                self.workers[worker].slots_free += 1;
                self.drain_queue(now);
                let kind = if fail { AckKind::Failed } else { AckKind::Completed };
                if !fail {
                    self.events.push(Event::Finished {
                        job: (dispatch.job.workflow.0, dispatch.job.job.0),
                    });
                }
                self.send_ack(
                    AckMsg::new(dispatch.job, worker as u32, kind, dispatch.attempt),
                    now,
                );
            }
            Ev::AckArrive(ack) => {
                if self.master_down {
                    self.outage_backlog.push(LoggedInput::Ack { ack, at: now });
                } else {
                    self.ingest_ack(ack, now);
                }
            }
            Ev::Fault(event) => match event {
                FaultEvent::WorkerCrash { worker } => self.crash_worker(worker as usize),
                FaultEvent::SpotRevocation { worker, notice_secs } => {
                    if self.workers[worker as usize].alive {
                        self.workers[worker as usize].draining = true;
                        self.push(now + notice_secs, Ev::Fault(FaultEvent::WorkerCrash { worker }));
                    }
                }
                // Stalls are applied as finish-time freezes in
                // `start_job` (the schedule is known upfront).
                FaultEvent::WorkerStall { .. } => {}
                FaultEvent::MasterKill { restart_delay_secs } => {
                    if !self.master_down {
                        self.master_down = true;
                        self.push(now + restart_delay_secs, Ev::MasterRestart);
                    }
                }
            },
            Ev::MasterRestart => self.restart_master(now),
        }
    }
}

fn engine_config(scenario: &Scenario) -> EngineConfig {
    let lossy = scenario.chaos.is_lossy();
    let faulty = !scenario.faults.is_empty();
    EngineConfig {
        // Generous relative to job runtimes (≤ 1 s) and chaos delays, so
        // spurious timeouts never race the retry-budget accounting; tight
        // enough that drop recovery converges quickly in virtual time.
        // Fault scenarios need the middle ground: a crashed worker's
        // jobs recover only via this timeout, so it must clear the worst
        // stall-stretched runtime yet stay small against the horizon.
        // Fault+chaos takes the lossy arm — a dropped ack and a crashed
        // worker recover through the same deadline, and 30 s covers both
        // in virtual time.
        default_timeout_secs: if lossy {
            30.0
        } else if faulty {
            8.0
        } else {
            1000.0
        },
        checkout_timeout_secs: lossy.then_some(5.0),
        retry: RetryPolicy {
            max_attempts: scenario.max_attempts,
            backoff_base_secs: scenario.backoff_base_secs,
            backoff_factor: 2.0,
            backoff_max_secs: 60.0,
            jitter_frac: 0.0,
            seed: scenario.seed,
        },
        timer_backend: scenario.timer_backend,
    }
}

/// Execute the scenario through the deterministic engine path, picking
/// the engine shape from `scenario.shards` (and, for sharded scenarios
/// with `parallel` set, the thread-parallel driver in barrier mode).
pub fn run(scenario: &Scenario, cfg: &EngineDriverConfig) -> PathOutcome {
    let config = engine_config(scenario);
    if scenario.shards > 1 && scenario.parallel {
        run_with(scenario, cfg, || config.build_parallel(scenario.shards, scenario.shards))
    } else if scenario.shards > 1 {
        run_with(scenario, cfg, || config.build_sharded(scenario.shards))
    } else {
        run_with(scenario, cfg, || config.build())
    }
}

fn run_with<E: EngineCore, F: Fn() -> E>(
    scenario: &Scenario,
    cfg: &EngineDriverConfig,
    make: F,
) -> PathOutcome {
    let chaos = (!scenario.chaos.is_noop()).then(|| {
        ChaosDecider::new(ChaosConfig {
            seed: scenario.chaos.seed,
            drop_prob: scenario.chaos.drop_prob,
            dup_prob: scenario.chaos.dup_prob,
            delay_prob: scenario.chaos.delay_prob,
            delay_secs: scenario.chaos.delay_secs,
        })
    });
    let engine = make();
    let mut driver = Driver {
        scenario,
        cfg,
        built: scenario.build_workflows(),
        engine,
        make,
        chaos,
        heap: BinaryHeap::new(),
        seq: 0,
        workers: (0..scenario.workers)
            .map(|_| SimWorker {
                slots_free: scenario.slots_per_worker,
                alive: true,
                draining: false,
                epoch: 0,
            })
            .collect(),
        queue: VecDeque::new(),
        events: Vec::new(),
        dispatch_counter: 0,
        actions: Vec::new(),
        input_log: Vec::new(),
        master_down: false,
        outage_backlog: Vec::new(),
        restarts: 0,
        recovery_ok: true,
    };
    for i in 0..scenario.workflows.len() {
        let at = scenario.submission_interval_secs * i as f64;
        driver.push(at, Ev::Submit(i));
    }
    for f in &scenario.faults.events {
        driver.push(f.at_secs, Ev::Fault(f.event));
    }

    let mut now = 0.0f64;
    let mut steps = 0usize;
    let mut note = None;
    // Settled is only terminal once every scheduled submission has fired:
    // an early workflow can settle while later ones still sit in the heap.
    let all_submitted =
        |d: &Driver<E, F>| d.engine.stats().workflows_submitted == d.scenario.workflows.len();
    while !(driver.engine.all_settled() && all_submitted(&driver) && !driver.master_down) {
        steps += 1;
        if steps > STEP_CAP {
            note = Some(format!("step cap {STEP_CAP} exceeded at t={now:.3}"));
            break;
        }
        let next_event = driver.heap.peek().map(|Reverse(s)| s.at);
        // A dead master scans nothing: its deadlines resume only after
        // the replacement replays the log.
        let next_deadline = if driver.master_down { None } else { driver.engine.next_deadline() };
        match (next_event, next_deadline) {
            (None, None) => {
                note = Some(format!(
                    "stall at t={now:.3}: no pending events or deadlines, \
                     {} dispatches routed, {} queued",
                    driver.dispatch_counter,
                    driver.queue.len()
                ));
                break;
            }
            (event_at, Some(d)) if event_at.is_none_or(|e| d <= e) => {
                now = now.max(d);
                driver.ingest_scan(now);
            }
            _ => {
                let Reverse(sched) = driver.heap.pop().expect("peeked event");
                now = now.max(sched.at);
                driver.handle(sched.ev, now);
            }
        }
    }

    let settled = driver.engine.all_settled();
    let mut completed = std::collections::BTreeSet::new();
    for (w, wf) in scenario.workflows.iter().enumerate() {
        for j in 0..wf.jobs.len() {
            let id = dewe_dag::EnsembleJobId::new(
                dewe_dag::WorkflowId(w as u32),
                dewe_dag::JobId(j as u32),
            );
            if driver.engine.job_state(id) == Some(dewe_dag::JobState::Completed) {
                completed.insert((w as u32, j as u32));
            }
        }
    }
    PathOutcome {
        kind: PathKind::Engine,
        completed,
        events: driver.events,
        stats: Some(driver.engine.stats()),
        makespan_secs: Some(now),
        settled,
        master_stats: None,
        liveness_recovery: (driver.restarts > 0).then_some(driver.recovery_ok),
        note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant;

    #[test]
    fn clean_scenario_settles_and_conforms() {
        let s = Scenario::generate(0); // class 0: clean
        let out = run(&s, &EngineDriverConfig::default());
        assert!(out.settled);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn engine_path_is_deterministic() {
        let s = Scenario::generate(7); // class 1: chaos
        let a = run(&s, &EngineDriverConfig::default());
        let b = run(&s, &EngineDriverConfig::default());
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.makespan_secs, b.makespan_secs);
    }

    #[test]
    fn sharded_scenarios_settle_and_conform() {
        let sharded: Vec<_> =
            (0..32).map(Scenario::generate).filter(|s| s.shards > 1).take(4).collect();
        assert!(!sharded.is_empty(), "generator must produce sharded scenarios");
        for s in sharded {
            let out = run(&s, &EngineDriverConfig::default());
            assert!(out.settled, "seed {}: {:?}", s.seed, out.note);
            let v = invariant::check(&s, &out);
            assert!(v.is_empty(), "seed {}: {v:?}", s.seed);
        }
    }

    #[test]
    fn parallel_driver_matches_sequential_facade() {
        let sharded: Vec<_> =
            (0..32).map(Scenario::generate).filter(|s| s.shards > 1).take(4).collect();
        assert!(!sharded.is_empty(), "generator must produce sharded scenarios");
        for mut s in sharded {
            s.parallel = false;
            let seq = run(&s, &EngineDriverConfig::default());
            s.parallel = true;
            let par = run(&s, &EngineDriverConfig::default());
            assert_eq!(seq.completed, par.completed, "seed {}", s.seed);
            assert_eq!(seq.events, par.events, "seed {}", s.seed);
            assert_eq!(seq.stats, par.stats, "seed {}", s.seed);
            assert_eq!(seq.makespan_secs, par.makespan_secs, "seed {}", s.seed);
            assert_eq!(seq.settled, par.settled, "seed {}", s.seed);
        }
    }

    #[test]
    fn dropped_dispatch_mutation_stalls() {
        let s = Scenario::generate(0);
        let out = run(&s, &EngineDriverConfig { drop_nth_dispatch: Some(0), ..Default::default() });
        assert!(!out.settled, "losing a dispatch must strand the ensemble");
        let v = invariant::check(&s, &out);
        assert!(v.iter().any(|m| m.contains("did not settle")), "{v:?}");
    }
}
