//! Deterministic virtual-time driver for the sans-IO engines — the
//! oracle's reference path. Generic over [`EngineCore`], it drives the
//! plain [`EnsembleEngine`] or, when the scenario asks for
//! `shards > 1`, a [`ShardedEngine`] — so every differential sweep also
//! checks shard-count invariance for free.
//!
//! A discrete-event loop plays the roles of transport and worker pool:
//! dispatch actions become delivery events, deliveries occupy worker
//! slots, executions take their modeled `cpu_secs` of virtual time, and
//! acknowledgments travel back as events of their own. Chaos is applied
//! by the same pure [`ChaosDecider`] the other paths use, but keyed by
//! *message identity* (`workflow`, `job`, `attempt`, `kind`) rather than
//! publish order, so the fault schedule is a function of the scenario
//! alone — independent of event interleaving and re-runs.
//!
//! Between transport events the driver lets the engine's own clock run:
//! whenever the next engine deadline (job timeout or deferred retry)
//! precedes the next transport event, the driver advances virtual time to
//! the deadline and scans. A run with no pending events and no pending
//! deadlines that has not settled is a **stall** — the exact class of bug
//! (lost dispatch, stuck dependency) the oracle exists to catch.
//!
//! [`EnsembleEngine`]: dewe_core::EnsembleEngine
//! [`ShardedEngine`]: dewe_core::ShardedEngine

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

use dewe_core::{AckKind, AckMsg, DispatchMsg};
use dewe_core::{Action, EngineConfig, EngineCore, RetryPolicy};
use dewe_mq::chaos::{message_key, streams};
use dewe_mq::{ChaosConfig, ChaosDecider, Fault};

use crate::invariant::{Event, PathKind, PathOutcome};
use crate::scenario::Scenario;

/// Transport latency between any publish and its delivery, virtual
/// seconds. Small but nonzero so causality is visible in timestamps.
const EPS: f64 = 1e-3;

/// Abort threshold for runaway scenarios (a conforming 36-job scenario
/// settles in a few hundred events).
const STEP_CAP: usize = 200_000;

/// Knobs for deliberately mis-driving the engine — the oracle's own
/// self-test. A mutated run must produce violations, and the shrinker
/// must reduce them to a minimal repro.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineDriverConfig {
    /// Silently discard the n-th (0-based) dispatch action instead of
    /// delivering it: an injected "engine lost a job" bug.
    pub drop_nth_dispatch: Option<u64>,
}

enum Ev {
    Submit(usize),
    DispatchArrive(DispatchMsg),
    JobFinish { dispatch: DispatchMsg, fail: bool },
    AckArrive(AckMsg),
}

struct Sched {
    at: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Sched {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Sched {}
impl PartialOrd for Sched {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sched {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.total_cmp(&other.at).then_with(|| self.seq.cmp(&other.seq))
    }
}

struct Driver<'a, E: EngineCore> {
    scenario: &'a Scenario,
    cfg: &'a EngineDriverConfig,
    built: Vec<std::sync::Arc<dewe_dag::Workflow>>,
    engine: E,
    chaos: Option<ChaosDecider>,
    heap: BinaryHeap<Reverse<Sched>>,
    seq: u64,
    free_slots: usize,
    queue: VecDeque<DispatchMsg>,
    events: Vec<Event>,
    dispatch_counter: u64,
    actions: Vec<Action>,
}

fn job_key(d: &DispatchMsg) -> u64 {
    ((d.job.workflow.0 as u64) << 32) | d.job.job.0 as u64
}

impl<E: EngineCore> Driver<'_, E> {
    fn push(&mut self, at: f64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(Sched { at, seq: self.seq, ev }));
    }

    fn decide(&self, stream: u64, key: u64) -> Fault {
        match &self.chaos {
            Some(d) => d.decide(stream, key),
            None => Fault::Deliver,
        }
    }

    /// Route a dispatch action through chaos toward the worker pool.
    fn send_dispatch(&mut self, d: DispatchMsg, now: f64) {
        let n = self.dispatch_counter;
        self.dispatch_counter += 1;
        if self.cfg.drop_nth_dispatch == Some(n) {
            return; // the injected bug: the job silently never ships
        }
        let key = message_key(job_key(&d), d.attempt as u64, 0);
        match self.decide(streams::DISPATCH, key) {
            Fault::Drop => {}
            Fault::Duplicate => {
                self.push(now + EPS, Ev::DispatchArrive(d));
                self.push(now + 2.0 * EPS, Ev::DispatchArrive(d));
            }
            Fault::Delay(secs) => self.push(now + secs + EPS, Ev::DispatchArrive(d)),
            Fault::Deliver => self.push(now + EPS, Ev::DispatchArrive(d)),
        }
    }

    /// Route a worker acknowledgment through chaos back to the engine.
    fn send_ack(&mut self, ack: AckMsg, now: f64) {
        let pack = ((ack.job.workflow.0 as u64) << 32) | ack.job.job.0 as u64;
        let key = message_key(pack, ack.attempt as u64, 1 + ack.kind.code() as u64);
        match self.decide(streams::ACK, key) {
            Fault::Drop => {}
            Fault::Duplicate => {
                self.push(now + EPS, Ev::AckArrive(ack));
                self.push(now + 2.0 * EPS, Ev::AckArrive(ack));
            }
            Fault::Delay(secs) => self.push(now + secs + EPS, Ev::AckArrive(ack)),
            Fault::Deliver => self.push(now + EPS, Ev::AckArrive(ack)),
        }
    }

    /// A delivered dispatch begins executing on a free slot.
    fn start_job(&mut self, d: DispatchMsg, now: f64) {
        debug_assert!(self.free_slots > 0);
        self.free_slots -= 1;
        self.events.push(Event::Started { job: (d.job.workflow.0, d.job.job.0) });
        self.send_ack(
            AckMsg { job: d.job, worker: 0, kind: AckKind::Running, attempt: d.attempt },
            now,
        );
        let spec = &self.scenario.workflows[d.job.workflow.index()].jobs[d.job.job.index()];
        let fail = d.attempt <= self.scenario.failing_attempts(d.job.workflow.0, d.job.job.0);
        self.push(now + spec.cpu_secs, Ev::JobFinish { dispatch: d, fail });
    }

    /// Drain engine actions produced at `now`.
    fn process_actions(&mut self, now: f64) {
        let mut actions = std::mem::take(&mut self.actions);
        for action in actions.drain(..) {
            if let Action::Dispatch(d) = action {
                self.send_dispatch(d, now);
            }
        }
        self.actions = actions;
    }

    fn handle(&mut self, ev: Ev, now: f64) {
        match ev {
            Ev::Submit(i) => {
                let wf = std::sync::Arc::clone(&self.built[i]);
                self.engine.submit_workflow(wf, now, &mut self.actions);
                self.process_actions(now);
            }
            Ev::DispatchArrive(d) => {
                if self.free_slots > 0 {
                    self.start_job(d, now);
                } else {
                    self.queue.push_back(d);
                }
            }
            Ev::JobFinish { dispatch, fail } => {
                self.free_slots += 1;
                if let Some(next) = self.queue.pop_front() {
                    self.start_job(next, now);
                }
                let kind = if fail { AckKind::Failed } else { AckKind::Completed };
                if !fail {
                    self.events.push(Event::Finished {
                        job: (dispatch.job.workflow.0, dispatch.job.job.0),
                    });
                }
                self.send_ack(
                    AckMsg { job: dispatch.job, worker: 0, kind, attempt: dispatch.attempt },
                    now,
                );
            }
            Ev::AckArrive(ack) => {
                self.engine.on_ack(ack, now, &mut self.actions);
                self.process_actions(now);
            }
        }
    }
}

fn engine_config(scenario: &Scenario) -> EngineConfig {
    let lossy = scenario.chaos.is_lossy();
    EngineConfig {
        // Generous relative to job runtimes (≤ 1 s) and chaos delays, so
        // spurious timeouts never race the retry-budget accounting; tight
        // enough that drop recovery converges quickly in virtual time.
        default_timeout_secs: if lossy { 30.0 } else { 1000.0 },
        checkout_timeout_secs: lossy.then_some(5.0),
        retry: RetryPolicy {
            max_attempts: scenario.max_attempts,
            backoff_base_secs: scenario.backoff_base_secs,
            backoff_factor: 2.0,
            backoff_max_secs: 60.0,
            jitter_frac: 0.0,
            seed: scenario.seed,
        },
    }
}

/// Execute the scenario through the deterministic engine path, picking
/// the engine shape from `scenario.shards` (and, for sharded scenarios
/// with `parallel` set, the thread-parallel driver in barrier mode).
pub fn run(scenario: &Scenario, cfg: &EngineDriverConfig) -> PathOutcome {
    let config = engine_config(scenario);
    if scenario.shards > 1 && scenario.parallel {
        run_with(scenario, cfg, config.build_parallel(scenario.shards, scenario.shards))
    } else if scenario.shards > 1 {
        run_with(scenario, cfg, config.build_sharded(scenario.shards))
    } else {
        run_with(scenario, cfg, config.build())
    }
}

fn run_with<E: EngineCore>(
    scenario: &Scenario,
    cfg: &EngineDriverConfig,
    engine: E,
) -> PathOutcome {
    let chaos = (!scenario.chaos.is_noop()).then(|| {
        ChaosDecider::new(ChaosConfig {
            seed: scenario.chaos.seed,
            drop_prob: scenario.chaos.drop_prob,
            dup_prob: scenario.chaos.dup_prob,
            delay_prob: scenario.chaos.delay_prob,
            delay_secs: scenario.chaos.delay_secs,
        })
    });
    let mut driver = Driver {
        scenario,
        cfg,
        built: scenario.build_workflows(),
        engine,
        chaos,
        heap: BinaryHeap::new(),
        seq: 0,
        free_slots: scenario.workers * scenario.slots_per_worker,
        queue: VecDeque::new(),
        events: Vec::new(),
        dispatch_counter: 0,
        actions: Vec::new(),
    };
    for i in 0..scenario.workflows.len() {
        let at = scenario.submission_interval_secs * i as f64;
        driver.push(at, Ev::Submit(i));
    }

    let mut now = 0.0f64;
    let mut steps = 0usize;
    let mut note = None;
    // Settled is only terminal once every scheduled submission has fired:
    // an early workflow can settle while later ones still sit in the heap.
    let all_submitted =
        |d: &Driver<E>| d.engine.stats().workflows_submitted == d.scenario.workflows.len();
    while !(driver.engine.all_settled() && all_submitted(&driver)) {
        steps += 1;
        if steps > STEP_CAP {
            note = Some(format!("step cap {STEP_CAP} exceeded at t={now:.3}"));
            break;
        }
        let next_event = driver.heap.peek().map(|Reverse(s)| s.at);
        let next_deadline = driver.engine.next_deadline();
        match (next_event, next_deadline) {
            (None, None) => {
                note = Some(format!(
                    "stall at t={now:.3}: no pending events or deadlines, \
                     {} dispatches routed, {} queued",
                    driver.dispatch_counter,
                    driver.queue.len()
                ));
                break;
            }
            (event_at, Some(d)) if event_at.is_none_or(|e| d <= e) => {
                now = now.max(d);
                driver.engine.check_timeouts(now, &mut driver.actions);
                driver.process_actions(now);
            }
            _ => {
                let Reverse(sched) = driver.heap.pop().expect("peeked event");
                now = now.max(sched.at);
                driver.handle(sched.ev, now);
            }
        }
    }

    let settled = driver.engine.all_settled();
    let mut completed = std::collections::BTreeSet::new();
    for (w, wf) in scenario.workflows.iter().enumerate() {
        for j in 0..wf.jobs.len() {
            let id = dewe_dag::EnsembleJobId::new(
                dewe_dag::WorkflowId(w as u32),
                dewe_dag::JobId(j as u32),
            );
            if driver.engine.job_state(id) == Some(dewe_dag::JobState::Completed) {
                completed.insert((w as u32, j as u32));
            }
        }
    }
    PathOutcome {
        kind: PathKind::Engine,
        completed,
        events: driver.events,
        stats: Some(driver.engine.stats()),
        makespan_secs: Some(now),
        settled,
        note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant;

    #[test]
    fn clean_scenario_settles_and_conforms() {
        let s = Scenario::generate(0); // class 0: clean
        let out = run(&s, &EngineDriverConfig::default());
        assert!(out.settled);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn engine_path_is_deterministic() {
        let s = Scenario::generate(7); // class 1: chaos
        let a = run(&s, &EngineDriverConfig::default());
        let b = run(&s, &EngineDriverConfig::default());
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.makespan_secs, b.makespan_secs);
    }

    #[test]
    fn sharded_scenarios_settle_and_conform() {
        let sharded: Vec<_> =
            (0..32).map(Scenario::generate).filter(|s| s.shards > 1).take(4).collect();
        assert!(!sharded.is_empty(), "generator must produce sharded scenarios");
        for s in sharded {
            let out = run(&s, &EngineDriverConfig::default());
            assert!(out.settled, "seed {}: {:?}", s.seed, out.note);
            let v = invariant::check(&s, &out);
            assert!(v.is_empty(), "seed {}: {v:?}", s.seed);
        }
    }

    #[test]
    fn parallel_driver_matches_sequential_facade() {
        let sharded: Vec<_> =
            (0..32).map(Scenario::generate).filter(|s| s.shards > 1).take(4).collect();
        assert!(!sharded.is_empty(), "generator must produce sharded scenarios");
        for mut s in sharded {
            s.parallel = false;
            let seq = run(&s, &EngineDriverConfig::default());
            s.parallel = true;
            let par = run(&s, &EngineDriverConfig::default());
            assert_eq!(seq.completed, par.completed, "seed {}", s.seed);
            assert_eq!(seq.events, par.events, "seed {}", s.seed);
            assert_eq!(seq.stats, par.stats, "seed {}", s.seed);
            assert_eq!(seq.makespan_secs, par.makespan_secs, "seed {}", s.seed);
            assert_eq!(seq.settled, par.settled, "seed {}", s.seed);
        }
    }

    #[test]
    fn dropped_dispatch_mutation_stalls() {
        let s = Scenario::generate(0);
        let out = run(&s, &EngineDriverConfig { drop_nth_dispatch: Some(0) });
        assert!(!out.settled, "losing a dispatch must strand the ensemble");
        let v = invariant::check(&s, &out);
        assert!(v.iter().any(|m| m.contains("did not settle")), "{v:?}");
    }
}
