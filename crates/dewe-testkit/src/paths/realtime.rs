//! Driver for the threaded realtime master/worker stack.
//!
//! Runs the scenario on real daemon threads over the in-process bus: one
//! master, `workers` worker daemons, and — when the scenario carries
//! chaos — a [`ChaosLink`] interposed on the dispatch and ack streams.
//! Job execution is tapped by a [`TapRunner`] that records start/finish
//! events into one mutex-ordered log; the lock acquisition order gives
//! the log a total order consistent with cross-thread happens-before (a
//! parent's finish is recorded inside `run()` before its Completed ack is
//! published, and a child's start is recorded only after the master
//! processed that ack and a worker pulled the child's dispatch), so the
//! shared dependency-order invariant reads directly off log positions.
//!
//! Virtual-time quantities are scaled to wall-clock milliseconds: jobs
//! execute instantly (runtimes are the simulators' concern; this path
//! checks protocol correctness), chaos delays hold messages ~20 ms, and a
//! watchdog turns a hung run into a reported stall instead of a hung
//! test.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dewe_core::realtime::{
    spawn_master, spawn_worker, submit, ChaosLink, JobOutcome, JobRunner, MasterConfig,
    MasterEvent, MessageBus, Registry, RunContext, WorkerConfig,
};
use dewe_core::{EngineStats, RetryPolicy};
use dewe_dag::{JobId, Workflow};
use dewe_mq::ChaosConfig;

use crate::invariant::{Event, PathKind, PathOutcome};
use crate::scenario::Scenario;

/// Wall-clock hold applied to chaos-delayed messages.
const DELAY_SECS_WALL: f64 = 0.02;

/// Give a stuck run this long before declaring a stall.
const WATCHDOG: Duration = Duration::from_secs(30);

/// Records execution events and plays the scenario's failure script.
struct TapRunner {
    failures: HashMap<(u32, u32), u32>,
    log: Arc<Mutex<Vec<Event>>>,
}

impl JobRunner for TapRunner {
    fn run(&self, _workflow: &Workflow, job: JobId, ctx: &RunContext) -> JobOutcome {
        let id = (ctx.workflow_id.0, job.0);
        self.log.lock().expect("tap log").push(Event::Started { job: id });
        if let Some(&failing) = self.failures.get(&id) {
            if ctx.attempt <= failing {
                return JobOutcome::Failed(format!("scripted failure, attempt {}", ctx.attempt));
            }
        }
        self.log.lock().expect("tap log").push(Event::Finished { job: id });
        JobOutcome::Success
    }
}

/// Either a plain shared bus or a chaos-interposed bus pair.
enum Fabric {
    Plain(MessageBus),
    Chaos(ChaosLink),
}

impl Fabric {
    fn master_bus(&self) -> &MessageBus {
        match self {
            Fabric::Plain(bus) => bus,
            Fabric::Chaos(link) => &link.master_bus,
        }
    }

    fn worker_bus(&self) -> &MessageBus {
        match self {
            Fabric::Plain(bus) => bus,
            Fabric::Chaos(link) => &link.worker_bus,
        }
    }

    fn shutdown(self) -> Option<String> {
        match self {
            Fabric::Plain(bus) => {
                bus.shutdown();
                None
            }
            Fabric::Chaos(link) => {
                let note = format!(
                    "chaos dispatch {:?} ack {:?}",
                    link.dispatch_stats(),
                    link.ack_stats()
                );
                link.shutdown();
                Some(note)
            }
        }
    }
}

fn master_config(scenario: &Scenario) -> MasterConfig {
    let lossy = scenario.chaos.is_lossy();
    MasterConfig {
        // Jobs execute instantly, so a timeout only ever fires when a
        // message was actually lost; lossy scenarios get tight deadlines
        // so recovery converges within the watchdog, loss-free ones get
        // deadlines no healthy run can hit.
        default_timeout_secs: if lossy { 0.3 } else { 30.0 },
        checkout_timeout_secs: lossy.then_some(0.25),
        retry: RetryPolicy {
            max_attempts: scenario.max_attempts,
            backoff_base_secs: if scenario.backoff_base_secs > 0.0 { 0.002 } else { 0.0 },
            backoff_factor: 2.0,
            backoff_max_secs: 0.05,
            jitter_frac: 0.0,
            seed: scenario.seed,
        },
        timeout_scan_interval: Duration::from_millis(5),
        expected_workflows: Some(scenario.workflows.len()),
        // Sharded scenarios run a sharded master over the *un-sharded*
        // bus: every shard's dispatches fall back to the shared topic, so
        // the same worker pool serves all shards (see
        // `MessageBus::dispatch_topic`).
        shards: scenario.shards,
        ..MasterConfig::default()
    }
}

/// Execute the scenario through the threaded realtime stack.
pub fn run(scenario: &Scenario) -> PathOutcome {
    let fabric = if scenario.chaos.is_noop() {
        Fabric::Plain(MessageBus::new())
    } else {
        Fabric::Chaos(ChaosLink::new(ChaosConfig {
            seed: scenario.chaos.seed,
            drop_prob: scenario.chaos.drop_prob,
            dup_prob: scenario.chaos.dup_prob,
            delay_prob: scenario.chaos.delay_prob,
            delay_secs: DELAY_SECS_WALL,
        }))
    };

    let registry = Registry::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let runner = Arc::new(TapRunner {
        failures: scenario
            .failures
            .iter()
            .map(|f| ((f.workflow, f.job), f.failing_attempts))
            .collect(),
        log: Arc::clone(&log),
    });

    let master =
        spawn_master(fabric.master_bus().clone(), registry.clone(), master_config(scenario));
    let workers: Vec<_> = (0..scenario.workers)
        .map(|w| {
            spawn_worker(
                fabric.worker_bus().clone(),
                registry.clone(),
                Arc::clone(&runner) as Arc<dyn JobRunner>,
                WorkerConfig {
                    worker_id: w as u32,
                    slots: scenario.slots_per_worker,
                    pull_timeout: Duration::from_millis(5),
                    ..WorkerConfig::default()
                },
            )
        })
        .collect();

    for (i, wf) in scenario.build_workflows().into_iter().enumerate() {
        submit(fabric.master_bus(), format!("wf{i}"), wf);
    }

    // Watchdog: wait for the master's terminal event; a silent 30 s means
    // the stack hung and the stall itself is the finding.
    let deadline = Instant::now() + WATCHDOG;
    let stats: Option<EngineStats> = loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break None;
        }
        match master.events.recv_timeout(remaining) {
            Ok(MasterEvent::AllCompleted { stats }) | Ok(MasterEvent::AllSettled { stats }) => {
                break Some(stats);
            }
            Ok(_) => continue,
            Err(_) => break None, // timeout or master gone without a verdict
        }
    };

    // Teardown order matters on a stall: closing the fabric unblocks the
    // master loop so the join below cannot hang.
    let settled = stats.is_some();
    for worker in workers {
        worker.stop();
    }
    let mut note = fabric.shutdown();
    let final_stats = master.join();
    if !settled {
        let n = format!("watchdog expired after {WATCHDOG:?}; stats {final_stats:?}");
        note = Some(match note {
            Some(existing) => format!("{n}; {existing}"),
            None => n,
        });
    }

    let events = log.lock().expect("tap log").clone();
    let completed: BTreeSet<(u32, u32)> = events
        .iter()
        .filter_map(|ev| match *ev {
            Event::Finished { job } => Some(job),
            Event::Started { .. } => None,
        })
        .collect();
    PathOutcome {
        kind: PathKind::Realtime,
        completed,
        events,
        stats: Some(if settled { stats.unwrap() } else { final_stats }),
        makespan_secs: None,
        settled,
        note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant;

    #[test]
    fn clean_scenario_conforms() {
        let s = Scenario::generate(0);
        let out = run(&s);
        assert!(out.settled, "{:?}", out.note);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn failure_scenario_dead_letters_as_expected() {
        let s = Scenario::generate(2); // class 2: scripted failures
        let out = run(&s);
        assert!(out.settled, "{:?}", out.note);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
        let expected = s.expected_outcome();
        assert_eq!(out.completed, expected.completed);
    }
}
