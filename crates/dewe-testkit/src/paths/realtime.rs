//! Driver for the threaded realtime master/worker stack.
//!
//! Runs the scenario on real daemon threads over the in-process bus: one
//! master, `workers` worker daemons, and — when the scenario carries
//! chaos — a [`ChaosLink`] interposed on the dispatch and ack streams.
//! Job execution is tapped by a [`TapRunner`] that records start/finish
//! events into one mutex-ordered log; the lock acquisition order gives
//! the log a total order consistent with cross-thread happens-before (a
//! parent's finish is recorded inside `run()` before its Completed ack is
//! published, and a child's start is recorded only after the master
//! processed that ack and a worker pulled the child's dispatch), so the
//! shared dependency-order invariant reads directly off log positions.
//!
//! Virtual-time quantities are scaled to wall-clock milliseconds: jobs
//! execute instantly (runtimes are the simulators' concern; this path
//! checks protocol correctness), chaos delays hold messages ~20 ms, and a
//! watchdog turns a hung run into a reported stall instead of a hung
//! test.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dewe_core::fault::FaultEvent;
use dewe_core::realtime::{
    spawn_master, spawn_worker, submit, ChaosLink, JobOutcome, JobRunner, JournalCommitPolicy,
    MasterConfig, MasterEvent, MasterHandle, MessageBus, Registry, RunContext, WorkerConfig,
    WorkerHandle,
};
use dewe_core::{EngineStats, RetryPolicy};
use dewe_dag::{JobId, Workflow};
use dewe_mq::ChaosConfig;

use crate::invariant::{Event, PathKind, PathOutcome};
use crate::scenario::{Scenario, FAULT_HORIZON_SECS};

/// Wall-clock hold applied to chaos-delayed messages.
const DELAY_SECS_WALL: f64 = 0.02;

/// Give a stuck run this long before declaring a stall.
const WATCHDOG: Duration = Duration::from_secs(30);

/// Scenario seconds → wall seconds for fault *times* (a 5 s fault axis
/// compresses to 250 ms of wall clock).
const FAULT_WALL_SCALE: f64 = 0.05;

/// Heartbeat-stall windows scale less aggressively so a decent fraction
/// of stalls outlast the lease and exercise the expiry → zombie-fence →
/// revival path rather than just renewing late.
const STALL_WALL_SCALE: f64 = 0.1;

/// Scenario cpu-seconds → wall sleep per job in fault runs, so faults
/// land mid-execution instead of after the last ack.
const JOB_SLEEP_SCALE: f64 = 0.08;

/// Worker lease in fault runs; heartbeats tick every 15 ms, so a live
/// worker has ~8 chances to renew before expiry.
const FAULT_LEASE_SECS: f64 = 0.12;
const FAULT_HEARTBEAT: Duration = Duration::from_millis(15);

/// Records execution events and plays the scenario's failure script.
struct TapRunner {
    failures: HashMap<(u32, u32), u32>,
    /// Per-job wall sleeps (empty outside fault runs: protocol checks
    /// want instant jobs).
    sleeps: HashMap<(u32, u32), Duration>,
    log: Arc<Mutex<Vec<Event>>>,
}

impl JobRunner for TapRunner {
    fn run(&self, _workflow: &Workflow, job: JobId, ctx: &RunContext) -> JobOutcome {
        let id = (ctx.workflow_id.0, job.0);
        self.log.lock().expect("tap log").push(Event::Started { job: id });
        if let Some(&failing) = self.failures.get(&id) {
            if ctx.attempt <= failing {
                return JobOutcome::Failed(format!("scripted failure, attempt {}", ctx.attempt));
            }
        }
        if let Some(&sleep) = self.sleeps.get(&id) {
            std::thread::sleep(sleep);
        }
        self.log.lock().expect("tap log").push(Event::Finished { job: id });
        JobOutcome::Success
    }
}

/// Either a plain shared bus or a chaos-interposed bus pair.
enum Fabric {
    Plain(MessageBus),
    Chaos(ChaosLink),
}

impl Fabric {
    fn master_bus(&self) -> &MessageBus {
        match self {
            Fabric::Plain(bus) => bus,
            Fabric::Chaos(link) => &link.master_bus,
        }
    }

    fn worker_bus(&self) -> &MessageBus {
        match self {
            Fabric::Plain(bus) => bus,
            Fabric::Chaos(link) => &link.worker_bus,
        }
    }

    fn shutdown(self) -> Option<String> {
        match self {
            Fabric::Plain(bus) => {
                bus.shutdown();
                None
            }
            Fabric::Chaos(link) => {
                let note = format!(
                    "chaos dispatch {:?} ack {:?}",
                    link.dispatch_stats(),
                    link.ack_stats()
                );
                link.shutdown();
                Some(note)
            }
        }
    }
}

fn master_config(scenario: &Scenario) -> MasterConfig {
    let lossy = scenario.chaos.is_lossy();
    // Jobs execute instantly, so a timeout only ever fires when a
    // message was actually lost; lossy scenarios get tight deadlines
    // so recovery converges within the watchdog, loss-free ones get
    // deadlines no healthy run can hit.
    let mut cfg = MasterConfig::builder()
        .default_timeout_secs(if lossy { 0.3 } else { 30.0 })
        .retry(RetryPolicy {
            max_attempts: scenario.max_attempts,
            backoff_base_secs: if scenario.backoff_base_secs > 0.0 { 0.002 } else { 0.0 },
            backoff_factor: 2.0,
            backoff_max_secs: 0.05,
            jitter_frac: 0.0,
            seed: scenario.seed,
        })
        .timeout_scan_interval(Duration::from_millis(5))
        .expected_workflows(scenario.workflows.len())
        // Sharded scenarios run a sharded master over the *un-sharded*
        // bus: every shard's dispatches fall back to the shared topic, so
        // the same worker pool serves all shards (see
        // `MessageBus::dispatch_topic`).
        .shards(scenario.shards)
        .timer_backend(scenario.timer_backend)
        .dispatch_batch(scenario.dispatch_batch);
    if lossy {
        cfg = cfg.checkout_timeout_secs(0.25);
    }
    cfg.build()
}

/// Execute the scenario through the threaded realtime stack.
pub fn run(scenario: &Scenario) -> PathOutcome {
    if !scenario.faults.is_empty() {
        return run_faulted(scenario);
    }
    let fabric = if scenario.chaos.is_noop() {
        Fabric::Plain(MessageBus::new())
    } else {
        Fabric::Chaos(ChaosLink::new(ChaosConfig {
            seed: scenario.chaos.seed,
            drop_prob: scenario.chaos.drop_prob,
            dup_prob: scenario.chaos.dup_prob,
            delay_prob: scenario.chaos.delay_prob,
            delay_secs: DELAY_SECS_WALL,
        }))
    };

    let registry = Registry::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let runner = Arc::new(TapRunner {
        failures: scenario
            .failures
            .iter()
            .map(|f| ((f.workflow, f.job), f.failing_attempts))
            .collect(),
        sleeps: HashMap::new(),
        log: Arc::clone(&log),
    });

    let master =
        spawn_master(fabric.master_bus().clone(), registry.clone(), master_config(scenario));
    let workers: Vec<_> = (0..scenario.workers)
        .map(|w| {
            spawn_worker(
                fabric.worker_bus().clone(),
                registry.clone(),
                Arc::clone(&runner) as Arc<dyn JobRunner>,
                WorkerConfig {
                    worker_id: w as u32,
                    slots: scenario.slots_per_worker,
                    pull_timeout: Duration::from_millis(5),
                    ..WorkerConfig::default()
                },
            )
        })
        .collect();

    for (i, wf) in scenario.build_workflows().into_iter().enumerate() {
        submit(fabric.master_bus(), format!("wf{i}"), wf);
    }

    // Watchdog: wait for the master's terminal event; a silent 30 s means
    // the stack hung and the stall itself is the finding.
    let deadline = Instant::now() + WATCHDOG;
    let stats: Option<EngineStats> = loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break None;
        }
        match master.events.recv_timeout(remaining) {
            Ok(MasterEvent::AllCompleted { stats }) | Ok(MasterEvent::AllSettled { stats }) => {
                break Some(stats);
            }
            Ok(_) => continue,
            Err(_) => break None, // timeout or master gone without a verdict
        }
    };

    // Teardown order matters on a stall: closing the fabric unblocks the
    // master loop so the join below cannot hang.
    let settled = stats.is_some();
    for worker in workers {
        worker.stop();
    }
    let mut note = fabric.shutdown();
    let final_stats = master.join();
    if !settled {
        let n = format!("watchdog expired after {WATCHDOG:?}; stats {final_stats:?}");
        note = Some(match note {
            Some(existing) => format!("{n}; {existing}"),
            None => n,
        });
    }

    let events = log.lock().expect("tap log").clone();
    let completed: BTreeSet<(u32, u32)> = events
        .iter()
        .filter_map(|ev| match *ev {
            Event::Finished { job } => Some(job),
            Event::Started { .. } => None,
        })
        .collect();
    PathOutcome {
        kind: PathKind::Realtime,
        completed,
        events,
        stats: Some(if settled { stats.unwrap() } else { final_stats }),
        makespan_secs: None,
        settled,
        master_stats: None,
        liveness_recovery: None,
        note,
    }
}

/// Wall-clock fault action, compiled from a [`FaultEvent`].
enum RtFault {
    KillWorker(usize),
    AnnounceDrain(usize),
    PauseHeartbeats(usize),
    ResumeHeartbeats(usize),
    KillMaster,
    RestartMaster,
}

/// Compile the scenario's fault plan into a sorted wall-clock schedule.
fn compile_faults(scenario: &Scenario) -> Vec<(f64, RtFault)> {
    let mut schedule = Vec::new();
    for f in &scenario.faults.events {
        let t = f.at_secs * FAULT_WALL_SCALE;
        match f.event {
            FaultEvent::WorkerCrash { worker } => {
                schedule.push((t, RtFault::KillWorker(worker as usize)));
            }
            FaultEvent::SpotRevocation { worker, notice_secs } => {
                schedule.push((t, RtFault::AnnounceDrain(worker as usize)));
                schedule.push((
                    t + notice_secs * FAULT_WALL_SCALE,
                    RtFault::KillWorker(worker as usize),
                ));
            }
            FaultEvent::WorkerStall { worker, stall_secs } => {
                schedule.push((t, RtFault::PauseHeartbeats(worker as usize)));
                schedule.push((
                    t + stall_secs * STALL_WALL_SCALE,
                    RtFault::ResumeHeartbeats(worker as usize),
                ));
            }
            FaultEvent::MasterKill { restart_delay_secs } => {
                schedule.push((t, RtFault::KillMaster));
                schedule.push((t + restart_delay_secs * FAULT_WALL_SCALE, RtFault::RestartMaster));
            }
        }
    }
    schedule.sort_by(|a, b| a.0.total_cmp(&b.0));
    schedule
}

/// Unique journal paths across concurrent fault runs in one process.
static FAULT_RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Execute a fault-class scenario: leases + heartbeats on, jobs slowed
/// to wall-clock so the compiled fault schedule lands mid-run, workers
/// killed/drained/stalled and the master killed and recovered from its
/// journal on cue.
fn run_faulted(scenario: &Scenario) -> PathOutcome {
    debug_assert_eq!(FAULT_HORIZON_SECS, 5.0, "wall scales are tuned to this axis");
    let fabric = if scenario.chaos.is_noop() {
        Fabric::Plain(MessageBus::new())
    } else {
        Fabric::Chaos(ChaosLink::new(ChaosConfig {
            seed: scenario.chaos.seed,
            drop_prob: scenario.chaos.drop_prob,
            dup_prob: scenario.chaos.dup_prob,
            delay_prob: scenario.chaos.delay_prob,
            delay_secs: DELAY_SECS_WALL,
        }))
    };

    let registry = Registry::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut sleeps = HashMap::new();
    for (w, wf) in scenario.workflows.iter().enumerate() {
        for (j, job) in wf.jobs.iter().enumerate() {
            sleeps.insert(
                (w as u32, j as u32),
                Duration::from_secs_f64(job.cpu_secs * JOB_SLEEP_SCALE),
            );
        }
    }
    let runner = Arc::new(TapRunner { failures: HashMap::new(), sleeps, log: Arc::clone(&log) });

    // The journal is only needed when the plan kills the master; give
    // each run its own file so concurrent tests never collide.
    let journal_path = scenario.faults.has_master_kill().then(|| {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "dewe-testkit-rt-fault-{}-{}-{}.wal",
            std::process::id(),
            scenario.seed,
            FAULT_RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        p
    });
    // Seeded structural fuzz, deterministic per scenario: roughly half
    // the fault seeds group-commit the WAL, an independent half compact
    // it aggressively mid-run, and sharded `parallel` scenarios run the
    // free-running threaded master — so master kill/restart recovery is
    // exercised against every journal mode and both serve loops, not
    // just the per-record single-threaded default.
    let mix = scenario.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let journal_commit = if mix & 1 == 0 {
        JournalCommitPolicy::PerRecord
    } else {
        JournalCommitPolicy::GroupCommit { max_records: 2 + ((mix >> 1) % 6) as usize }
    };
    let journal_compact_threshold = ((mix >> 4) & 1 == 0).then(|| 4 + ((mix >> 5) % 8) as usize);
    // Lossy fabric (fault+chaos class): dropped messages recover only
    // via these deadlines, so they must be tight enough that a handful
    // of serial losses still converges inside the watchdog. Non-lossy
    // fabric: recovery credit belongs to the lease plane (worker death)
    // and the checkout deadline (death between pull and Running ack),
    // with the job timeout as a distant backstop.
    let lossy = scenario.chaos.is_lossy();
    let mk_master_config = {
        let journal_path = journal_path.clone();
        let n_workflows = scenario.workflows.len();
        let shards = scenario.shards;
        let threads = if scenario.parallel && scenario.shards > 1 { scenario.shards } else { 0 };
        let seed = scenario.seed;
        let timer_backend = scenario.timer_backend;
        let dispatch_batch = scenario.dispatch_batch;
        move |recover: bool| {
            let mut cfg = MasterConfig::builder()
                .default_timeout_secs(if lossy { 1.0 } else { 5.0 })
                .checkout_timeout_secs(if lossy { 0.25 } else { 1.0 })
                .retry(RetryPolicy {
                    max_attempts: None,
                    backoff_base_secs: 0.0,
                    backoff_factor: 2.0,
                    backoff_max_secs: 0.05,
                    jitter_frac: 0.0,
                    seed,
                })
                .timeout_scan_interval(Duration::from_millis(5))
                .expected_workflows(n_workflows)
                .shards(shards)
                .threads(threads)
                .journal_commit(journal_commit)
                .lease_secs(FAULT_LEASE_SECS)
                .timer_backend(timer_backend)
                .dispatch_batch(dispatch_batch)
                .recover(recover);
            if let Some(p) = journal_path.clone() {
                cfg = cfg.journal_path(p);
            }
            if let Some(t) = journal_compact_threshold {
                cfg = cfg.journal_compact_threshold(t);
            }
            cfg.build()
        }
    };

    let mut master: Option<MasterHandle> =
        Some(spawn_master(fabric.master_bus().clone(), registry.clone(), mk_master_config(false)));
    let mut workers: Vec<Option<WorkerHandle>> = (0..scenario.workers)
        .map(|w| {
            Some(spawn_worker(
                fabric.worker_bus().clone(),
                registry.clone(),
                Arc::clone(&runner) as Arc<dyn JobRunner>,
                WorkerConfig {
                    worker_id: w as u32,
                    slots: scenario.slots_per_worker,
                    pull_timeout: Duration::from_millis(5),
                    heartbeat_interval: Some(FAULT_HEARTBEAT),
                    ..WorkerConfig::default()
                },
            ))
        })
        .collect();

    for (i, wf) in scenario.build_workflows().into_iter().enumerate() {
        submit(fabric.master_bus(), format!("wf{i}"), wf);
    }

    let schedule = compile_faults(scenario);
    let start = Instant::now();
    let deadline = start + WATCHDOG;
    let mut next_fault = 0;
    let mut master_killed = false;
    let mut pre_kill_rows: BTreeSet<u32> = BTreeSet::new();
    let mut stats: Option<EngineStats> = None;

    while Instant::now() < deadline {
        if next_fault < schedule.len() && start.elapsed().as_secs_f64() >= schedule[next_fault].0 {
            match schedule[next_fault].1 {
                RtFault::KillWorker(w) => {
                    if let Some(h) = workers[w].take() {
                        h.kill();
                    }
                }
                RtFault::AnnounceDrain(w) => {
                    if let Some(h) = workers[w].as_ref() {
                        h.announce_drain();
                    }
                }
                RtFault::PauseHeartbeats(w) => {
                    if let Some(h) = workers[w].as_ref() {
                        h.pause_heartbeats();
                    }
                }
                RtFault::ResumeHeartbeats(w) => {
                    if let Some(h) = workers[w].as_ref() {
                        h.resume_heartbeats();
                    }
                }
                RtFault::KillMaster => {
                    if let Some(m) = master.take() {
                        pre_kill_rows = m.liveness_snapshot().iter().map(|r| r.worker).collect();
                        m.kill();
                        master_killed = true;
                    }
                }
                RtFault::RestartMaster => {
                    if master.is_none() {
                        master = Some(spawn_master(
                            fabric.master_bus().clone(),
                            registry.clone(),
                            mk_master_config(true),
                        ));
                    }
                }
            }
            next_fault += 1;
            continue;
        }
        let Some(m) = master.as_ref() else {
            // Master-less window: workers keep executing, acks queue on
            // the bus; just wait for the scheduled restart.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        match m.events.recv_timeout(Duration::from_millis(2)) {
            Ok(MasterEvent::AllCompleted { stats: s })
            | Ok(MasterEvent::AllSettled { stats: s }) => {
                stats = Some(s);
                break;
            }
            Ok(_) => {}
            // Timeout: re-check faults and the watchdog. Disconnected
            // (master died without a verdict): pace the spin; the
            // watchdog turns it into a reported stall.
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    // Read fault-plane state before teardown consumes the handle.
    let settled = stats.is_some();
    let (master_stats, final_rows) = match master.as_ref() {
        Some(m) => (Some(m.master_stats()), m.liveness_snapshot()),
        None => (None, Vec::new()),
    };
    for worker in workers.iter_mut() {
        if let Some(h) = worker.take() {
            h.stop();
        }
    }
    let mut note = fabric.shutdown();
    let final_stats = master.map(MasterHandle::join);
    if !settled {
        let n = format!("watchdog expired after {WATCHDOG:?}; stats {final_stats:?}");
        note = Some(match note {
            Some(existing) => format!("{n}; {existing}"),
            None => n,
        });
    }
    if let Some(p) = &journal_path {
        let _ = std::fs::remove_file(p);
    }

    // Recovery equivalence, realtime flavour: every worker the killed
    // master knew about must reappear in the replacement's final table —
    // the journaled lifecycle records survived the crash.
    let liveness_recovery = master_killed.then(|| {
        let final_ids: BTreeSet<u32> = final_rows.iter().map(|r| r.worker).collect();
        pre_kill_rows.is_subset(&final_ids)
    });

    let events = log.lock().expect("tap log").clone();
    let completed: BTreeSet<(u32, u32)> = events
        .iter()
        .filter_map(|ev| match *ev {
            Event::Finished { job } => Some(job),
            Event::Started { .. } => None,
        })
        .collect();
    PathOutcome {
        kind: PathKind::Realtime,
        completed,
        events,
        stats: stats.or(final_stats),
        makespan_secs: None,
        settled,
        master_stats,
        liveness_recovery,
        note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant;

    #[test]
    fn clean_scenario_conforms() {
        let s = Scenario::generate(0);
        let out = run(&s);
        assert!(out.settled, "{:?}", out.note);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn failure_scenario_dead_letters_as_expected() {
        let s = Scenario::generate(2); // class 2: scripted failures
        let out = run(&s);
        assert!(out.settled, "{:?}", out.note);
        let v = invariant::check(&s, &out);
        assert!(v.is_empty(), "{v:?}");
        let expected = s.expected_outcome();
        assert_eq!(out.completed, expected.completed);
    }
}
