//! Differential oracle harness for the DEWE workflow stack.
//!
//! Four independent implementations of "run a workflow ensemble" live in
//! this workspace: the sans-IO [`dewe_core::EnsembleEngine`]
//! driven in virtual time, the modeled Pegasus/DAGMan/Condor baseline in
//! `dewe-baseline`, the threaded realtime master/worker stack over the
//! in-process bus, and the discrete-event simulation runtime over the
//! `dewe-simcloud` cluster model. They share semantics but almost no
//! code — which makes them each other's best test oracle.
//!
//! The harness generates randomized scenarios from a seed (DAG families —
//! Montage, CyberShake, Epigenomics, LIGO, SIPHT, seeded-random, and
//! adversarial shapes — runtimes, submission schedules, retry policies,
//! scripted failures, chaos schedules, fault plans), executes each
//! scenario through all four paths, and checks a shared invariant suite:
//!
//! - completion sets match the expected-outcome model (and each other);
//! - no lost jobs, no phantom completions;
//! - dependency order is never violated in any path's execution log;
//! - engine statistics obey conservation
//!   (`dispatches == resubmissions + jobs_completed + dead_lettered`);
//! - makespans respect the cpu-weighted critical-path lower bound.
//!
//! On divergence the failing scenario is shrunk (drop workflows, drop
//! jobs, drop failure specs, disable chaos, zero scheduling knobs) to a
//! locally minimal repro, replayable with `dewe-testkit replay <seed>`.

pub mod invariant;
pub mod oracle;
pub mod paths;
pub mod scenario;
pub mod shrink;

pub use invariant::{Event, PathKind, PathOutcome};
pub use oracle::{
    minimize, run_fault_chaos_seed, run_fault_seed, run_scenario, run_seed, Repro, SeedRun,
    ALL_PATHS,
};
pub use paths::EngineDriverConfig;
pub use scenario::Scenario;
