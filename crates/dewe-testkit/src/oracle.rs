//! The differential oracle: run one scenario through all four execution
//! paths, check the shared invariant suite, cross-compare the paths'
//! completion sets, and — on divergence — shrink the scenario to a
//! minimal seed-replayable repro.

use std::collections::BTreeSet;

use crate::invariant::{self, PathKind, PathOutcome};
use crate::paths::{self, EngineDriverConfig};
use crate::scenario::Scenario;
use crate::shrink;

/// All paths, in reporting order.
pub const ALL_PATHS: [PathKind; 4] =
    [PathKind::Engine, PathKind::Baseline, PathKind::Realtime, PathKind::Sim];

/// Result of running one scenario through a set of paths.
#[derive(Debug)]
pub struct SeedRun {
    /// The scenario that was executed.
    pub scenario: Scenario,
    /// Violations, each prefixed with the offending path's name. Empty
    /// means all paths conformed and agreed.
    pub violations: Vec<String>,
    /// Which paths produced at least one violation.
    pub diverging: Vec<PathKind>,
}

impl SeedRun {
    /// True when every path conformed and the cross-checks agreed.
    pub fn conforms(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A minimized, replayable divergence.
#[derive(Debug)]
pub struct Repro {
    /// Seed whose generated scenario first diverged.
    pub seed: u64,
    /// Violations observed on the original (unshrunk) scenario.
    pub violations: Vec<String>,
    /// Locally minimal scenario that still diverges.
    pub minimized: Scenario,
    /// Violations observed on the minimized scenario.
    pub minimized_violations: Vec<String>,
}

impl Repro {
    /// Human-readable repro report, suitable for a CI artifact.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("differential divergence at seed {}\n", self.seed));
        out.push_str(&format!("replay: dewe-testkit replay {}\n\n", self.seed));
        out.push_str("violations on generated scenario:\n");
        for v in &self.violations {
            out.push_str(&format!("  - {v}\n"));
        }
        out.push_str("\nminimized scenario:\n");
        out.push_str(&self.minimized.describe());
        out.push_str("\nviolations on minimized scenario:\n");
        for v in &self.minimized_violations {
            out.push_str(&format!("  - {v}\n"));
        }
        out
    }
}

fn run_path(scenario: &Scenario, kind: PathKind, cfg: &EngineDriverConfig) -> PathOutcome {
    match kind {
        PathKind::Engine => paths::engine::run(scenario, cfg),
        PathKind::Baseline => paths::baseline::run(scenario),
        PathKind::Realtime => paths::realtime::run(scenario),
        PathKind::Sim => paths::sim::run(scenario, cfg),
    }
}

/// Run `scenario` through `kinds`, applying the per-path invariant suite
/// and the cross-path completion-set comparison.
pub fn run_scenario(scenario: &Scenario, kinds: &[PathKind], cfg: &EngineDriverConfig) -> SeedRun {
    let mut violations = Vec::new();
    let mut diverging = Vec::new();
    let mut settled: Vec<(PathKind, BTreeSet<(u32, u32)>)> = Vec::new();

    for &kind in kinds {
        let outcome = run_path(scenario, kind, cfg);
        let path_violations = invariant::check(scenario, &outcome);
        if !path_violations.is_empty() {
            diverging.push(kind);
        }
        for v in path_violations {
            violations.push(format!("[{}] {v}", kind.name()));
        }
        if outcome.settled {
            settled.push((kind, outcome.completed));
        }
    }

    // Cross-path agreement. Engine and realtime share failure semantics,
    // so their completion sets must be identical; the baseline folds
    // dead-letters and abandonments back into completions, so against it
    // only the full job set is comparable.
    let every_job: BTreeSet<(u32, u32)> = {
        let exp = scenario.expected_outcome();
        exp.completed
            .iter()
            .chain(exp.dead_lettered.iter())
            .chain(exp.abandoned.iter())
            .copied()
            .collect()
    };
    for i in 0..settled.len() {
        for j in (i + 1)..settled.len() {
            let (ka, ca) = &settled[i];
            let (kb, cb) = &settled[j];
            let baseline_involved = *ka == PathKind::Baseline || *kb == PathKind::Baseline;
            let agree = if baseline_involved {
                // Baseline runs everything; the other path's terminal set
                // (completed + dead-lettered + abandoned) must cover the
                // same jobs, which `check` already verified per path.
                let full = |k: PathKind, c: &BTreeSet<(u32, u32)>| {
                    if k == PathKind::Baseline {
                        c.clone()
                    } else {
                        every_job.clone()
                    }
                };
                full(*ka, ca) == full(*kb, cb)
            } else {
                ca == cb
            };
            if !agree {
                let msg = format!(
                    "[cross] completion sets diverge: {} completed {} jobs, {} completed {} jobs",
                    ka.name(),
                    ca.len(),
                    kb.name(),
                    cb.len()
                );
                violations.push(msg);
                if !diverging.contains(ka) {
                    diverging.push(*ka);
                }
                if !diverging.contains(kb) {
                    diverging.push(*kb);
                }
            }
        }
    }

    SeedRun { scenario: scenario.clone(), violations, diverging }
}

/// Generate and run the scenario for `seed` through all four paths.
pub fn run_seed(seed: u64) -> SeedRun {
    run_scenario(&Scenario::generate(seed), &ALL_PATHS, &EngineDriverConfig::default())
}

/// Generate and run the **fault-class** scenario for `seed` through all
/// four paths: seeded worker crashes / revocations / stalls / master
/// kill+restart injected into the engine, realtime, and sim paths (the
/// baseline has no failure model and runs the plan inert).
pub fn run_fault_seed(seed: u64) -> SeedRun {
    run_scenario(&Scenario::generate_fault(seed), &ALL_PATHS, &EngineDriverConfig::default())
}

/// Generate and run the **fault+chaos** scenario for `seed` through all
/// four paths: the same ensemble and fault plan as [`run_fault_seed`]
/// with lossy message chaos overlaid, so dispatches and acks go missing
/// *while* workers crash and the master restarts.
pub fn run_fault_chaos_seed(seed: u64) -> SeedRun {
    run_scenario(&Scenario::generate_fault_chaos(seed), &ALL_PATHS, &EngineDriverConfig::default())
}

/// Shrink a diverging run to a minimal repro.
///
/// Shrinking replays the scenario many times, so it sticks to the
/// deterministic paths when they suffice: the threaded realtime path is
/// only exercised during shrinking when it was the sole diverging path.
pub fn minimize(run: &SeedRun, cfg: &EngineDriverConfig) -> Repro {
    assert!(!run.conforms(), "minimize() requires a diverging run");
    let deterministic: Vec<PathKind> =
        run.diverging.iter().copied().filter(|&k| k != PathKind::Realtime).collect();
    let kinds: Vec<PathKind> =
        if deterministic.is_empty() { vec![PathKind::Realtime] } else { deterministic };

    let diverges = |s: &Scenario| !run_scenario(s, &kinds, cfg).conforms();
    let minimized = shrink::minimize(&run.scenario, &diverges);
    let minimized_violations = run_scenario(&minimized, &kinds, cfg).violations;
    Repro {
        seed: run.scenario.seed,
        violations: run.violations.clone(),
        minimized,
        minimized_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_seed_conforms_across_all_paths() {
        let run = run_seed(3); // class 0: no chaos, no failures
        assert!(run.conforms(), "{:?}", run.violations);
    }

    #[test]
    fn deterministic_paths_agree_on_failure_seed() {
        // Engine vs baseline only (fast, no threads): the cross-check and
        // per-path suites must pass on a scripted-failure scenario.
        let s = Scenario::generate(5); // class 2
        let run = run_scenario(
            &s,
            &[PathKind::Engine, PathKind::Baseline],
            &EngineDriverConfig::default(),
        );
        assert!(run.conforms(), "{:?}", run.violations);
    }
}
