//! `dewe-testkit` — differential oracle CLI.
//!
//! ```text
//! dewe-testkit run <seed> [--class C]       run one seed through all 4 paths
//! dewe-testkit replay <seed> [--class C]    run one seed, print the full scenario
//! dewe-testkit sweep [--seeds N] [--start S] [--repro-out PATH] [--class C]
//! ```
//!
//! `sweep` runs seeds `S..S+N` (N defaults to `DEWE_DIFF_SEEDS` or 64).
//! On the first divergence it shrinks the scenario, writes the repro
//! report to `--repro-out` (default `target/dewe-diff-repro.txt`), and
//! exits non-zero. `--class fault` switches from the three classic seed
//! classes to fault-plane scenarios (worker crashes, spot revocations,
//! heartbeat stalls, master kill+restart); `--class fault-chaos` overlays
//! lossy message chaos on the identical fault scenarios.

use std::process::ExitCode;

use dewe_testkit::{
    minimize, run_fault_chaos_seed, run_fault_seed, run_seed, EngineDriverConfig, Scenario, SeedRun,
};

const DEFAULT_SEEDS: u64 = 64;
const DEFAULT_REPRO_OUT: &str = "target/dewe-diff-repro.txt";

/// Which scenario generator a command drives.
#[derive(Clone, Copy, PartialEq)]
enum Class {
    Classic,
    Fault,
    FaultChaos,
}

impl Class {
    fn generate(self, seed: u64) -> Scenario {
        match self {
            Class::Classic => Scenario::generate(seed),
            Class::Fault => Scenario::generate_fault(seed),
            Class::FaultChaos => Scenario::generate_fault_chaos(seed),
        }
    }

    fn run(self, seed: u64) -> SeedRun {
        match self {
            Class::Classic => run_seed(seed),
            Class::Fault => run_fault_seed(seed),
            Class::FaultChaos => run_fault_chaos_seed(seed),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Class::Classic => "",
            Class::Fault => " (fault class)",
            Class::FaultChaos => " (fault+chaos class)",
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dewe-testkit run <seed> [--class fault]\n       \
         dewe-testkit replay <seed> [--class fault]\n       \
         dewe-testkit sweep [--seeds N] [--start S] [--repro-out PATH] [--class fault|fault-chaos]"
    );
    ExitCode::from(2)
}

fn parse_seed(arg: Option<&String>) -> Option<u64> {
    arg.and_then(|s| s.parse().ok())
}

/// Strip a `--class <name>` pair out of `args`, returning the class.
fn extract_class(args: &mut Vec<String>) -> Option<Class> {
    match args.iter().position(|a| a == "--class") {
        None => Some(Class::Classic),
        Some(i) => {
            let class = match args.get(i + 1).map(String::as_str) {
                Some("fault") => Class::Fault,
                Some("fault-chaos") => Class::FaultChaos,
                Some("classic") => Class::Classic,
                _ => return None,
            };
            args.drain(i..i + 2);
            Some(class)
        }
    }
}

fn run_one(seed: u64, class: Class, show_scenario: bool) -> ExitCode {
    let scenario = class.generate(seed);
    if show_scenario {
        print!("{}", scenario.describe());
        println!();
    }
    let run = class.run(seed);
    if run.conforms() {
        println!("seed {seed}: OK ({} jobs across 4 paths)", scenario.total_jobs());
        ExitCode::SUCCESS
    } else {
        println!("seed {seed}: DIVERGED");
        for v in &run.violations {
            println!("  - {v}");
        }
        ExitCode::FAILURE
    }
}

fn sweep(args: &[String], class: Class) -> ExitCode {
    let mut seeds: u64 =
        std::env::var("DEWE_DIFF_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_SEEDS);
    let mut start: u64 = 0;
    let mut repro_out = DEFAULT_REPRO_OUT.to_string();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match parse_seed(it.next()) {
                Some(n) => seeds = n,
                None => return usage(),
            },
            "--start" => match parse_seed(it.next()) {
                Some(s) => start = s,
                None => return usage(),
            },
            "--repro-out" => match it.next() {
                Some(p) => repro_out = p.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let label = class.label();
    println!("differential sweep{label}: seeds {start}..{}", start + seeds);
    for seed in start..start + seeds {
        let run = class.run(seed);
        if run.conforms() {
            println!("seed {seed}: OK ({} jobs)", run.scenario.total_jobs());
            continue;
        }
        println!("seed {seed}: DIVERGED — shrinking");
        for v in &run.violations {
            println!("  - {v}");
        }
        let repro = minimize(&run, &EngineDriverConfig::default());
        let report = repro.report();
        print!("{report}");
        if let Some(dir) = std::path::Path::new(&repro_out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&repro_out, &report) {
            Ok(()) => println!("repro written to {repro_out}"),
            Err(e) => eprintln!("failed to write repro to {repro_out}: {e}"),
        }
        return ExitCode::FAILURE;
    }
    println!("sweep clean: {seeds} seeds, zero divergence");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(class) = extract_class(&mut args) else {
        return usage();
    };
    match args.first().map(String::as_str) {
        Some("run") => match parse_seed(args.get(1)) {
            Some(seed) => run_one(seed, class, false),
            None => usage(),
        },
        Some("replay") => match parse_seed(args.get(1)) {
            Some(seed) => run_one(seed, class, true),
            None => usage(),
        },
        Some("sweep") => sweep(&args[1..], class),
        _ => usage(),
    }
}
