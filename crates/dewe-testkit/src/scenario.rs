//! Seeded scenario generation and the analytic expected-outcome model.
//!
//! A [`Scenario`] is everything a differential run needs: DAG shapes,
//! per-job runtimes, a submission schedule, worker-pool geometry, the
//! retry policy, a chaos profile and a script of per-job failures. All of
//! it derives deterministically from one `u64` seed, so any run —
//! including a failing one — is reproducible from the seed alone
//! (`dewe-testkit replay <seed>`).
//!
//! Seeds fall into three classes (`seed % 3`), chosen so the engine's
//! terminal verdict stays analytically predictable:
//!
//! * **0 — clean**: no chaos, no failures, unbounded retries. Every job
//!   must complete, exactly once.
//! * **1 — chaos**: drop / duplicate / delay injection with *unbounded*
//!   retries and checkout timeouts. Every job must still complete
//!   (possibly after resubmissions); nothing may be lost.
//! * **2 — scripted failures**: a retry cap plus per-job scripts of
//!   failing attempts, with at most *delay* chaos. Which jobs dead-letter
//!   and which descendants are abandoned is computed analytically by
//!   [`Scenario::expected_outcome`]. Drop/duplicate chaos is excluded here
//!   by construction: the engine deliberately does not deduplicate Failed
//!   acknowledgments (a worker crash-report is authoritative), so a
//!   duplicated Failed ack would burn the retry budget twice and the
//!   analytic model would no longer match.
//!
//! Two further classes have their own generators:
//! [`Scenario::generate_fault`] (seeded crash/revocation/stall/master-kill
//! plans, delay-only chaos) and [`Scenario::generate_fault_chaos`] (the
//! same fault plans composed with lossy drop/dup chaos, so message loss
//! during a master outage is inside the fuzzed envelope).
//!
//! Workflow shapes are drawn from a weighted mix of **DAG families**
//! ([`DagFamily`]): the classic inline random generator plus the
//! calibrated `dewe-montage` gallery (Montage, CyberShake, Epigenomics,
//! LIGO, SIPHT) and the adversarial shapes (wide fan-out, deep chains,
//! diamond storms, fan-in cliffs).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;

use dewe_core::fault::FaultPlan;
use dewe_core::TimerBackend;
use dewe_dag::{Workflow, WorkflowBuilder};
use dewe_montage::{
    AdversarialConfig, CyberShakeConfig, EpigenomicsConfig, LigoConfig, MontageConfig, SiphtConfig,
};

/// Splitmix64 — the same tiny deterministic generator the chaos decider
/// uses; good enough to decorrelate scenario dimensions from one seed.
pub struct Rng(u64);

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// One job of a generated workflow. Parents always have smaller indices
/// (the generator emits jobs in topological order), which is what makes
/// the expected-outcome model computable in a single forward pass.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Modeled runtime in (virtual) seconds.
    pub cpu_secs: f64,
    /// Indices of parent jobs within the same workflow, all `<` this
    /// job's own index.
    pub parents: Vec<u32>,
}

/// The DAG family a generated workflow was sampled from. Purely
/// descriptive — the oracle paths consume only the [`JobSpec`] list —
/// but it labels repro reports and lets sweeps assert family coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DagFamily {
    /// The classic inline random generator.
    #[default]
    Random,
    /// Calibrated Montage mosaic (small degree).
    Montage,
    /// CyberShake seismic-hazard fan.
    CyberShake,
    /// Epigenomics data-parallel pipeline.
    Epigenomics,
    /// LIGO inspiral multi-group pipeline.
    Ligo,
    /// SIPHT heterogeneous diamond.
    Sipht,
    /// Adversarial shapes: wide fan-out, deep chains, diamond storms,
    /// fan-in cliffs.
    Adversarial,
}

impl DagFamily {
    /// Every family, in a fixed order (for coverage sweeps).
    pub const ALL: [DagFamily; 7] = [
        DagFamily::Random,
        DagFamily::Montage,
        DagFamily::CyberShake,
        DagFamily::Epigenomics,
        DagFamily::Ligo,
        DagFamily::Sipht,
        DagFamily::Adversarial,
    ];

    /// Short lowercase label for reports.
    pub fn name(self) -> &'static str {
        match self {
            DagFamily::Random => "random",
            DagFamily::Montage => "montage",
            DagFamily::CyberShake => "cybershake",
            DagFamily::Epigenomics => "epigenomics",
            DagFamily::Ligo => "ligo",
            DagFamily::Sipht => "sipht",
            DagFamily::Adversarial => "adversarial",
        }
    }
}

/// One generated workflow.
#[derive(Debug, Clone)]
pub struct WorkflowSpec {
    /// Which generator produced this shape.
    pub family: DagFamily,
    /// Jobs in topological (index) order.
    pub jobs: Vec<JobSpec>,
}

impl WorkflowSpec {
    /// Convert a real [`Workflow`] DAG into an oracle spec: jobs are
    /// re-indexed along the workflow's topological order (so every
    /// parent index is smaller than its child's, which the analytic
    /// expected-outcome model requires) and runtimes are normalized
    /// into the oracle's sub-second band — the calibrated generators
    /// emit hundreds of CPU-seconds per job, which the realtime path
    /// would turn into minutes of wall-clock sleeping.
    pub fn from_workflow(wf: &Workflow, family: DagFamily) -> Self {
        let order = wf.topo_order();
        let mut rank = vec![0u32; wf.job_count()];
        for (i, &id) in order.iter().enumerate() {
            rank[id.index()] = i as u32;
        }
        let max_cpu =
            wf.jobs().iter().map(|j| j.cpu_seconds).fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);
        let jobs = order
            .iter()
            .map(|&id| {
                let spec = wf.job(id);
                let mut parents: Vec<u32> =
                    wf.parents(id).iter().map(|p| rank[p.index()]).collect();
                parents.sort_unstable();
                JobSpec { cpu_secs: 0.05 + 0.6 * (spec.cpu_seconds / max_cpu), parents }
            })
            .collect();
        Self { family, jobs }
    }
}

/// Scripted failure: attempts `1..=failing_attempts` of this job return a
/// Failed acknowledgment; attempt `failing_attempts + 1` succeeds.
#[derive(Debug, Clone, Copy)]
pub struct FailureSpec {
    /// Workflow index.
    pub workflow: u32,
    /// Job index within the workflow.
    pub job: u32,
    /// How many leading attempts fail.
    pub failing_attempts: u32,
}

/// Chaos profile applied to the dispatch and ack streams.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Decider seed.
    pub seed: u64,
    /// Per-message drop probability.
    pub drop_prob: f64,
    /// Per-message duplication probability.
    pub dup_prob: f64,
    /// Per-message delay probability.
    pub delay_prob: f64,
    /// Virtual-time delay applied by the engine-path driver; the realtime
    /// path scales this down to wall-clock milliseconds.
    pub delay_secs: f64,
}

impl ChaosSpec {
    /// No chaos at all.
    pub fn none() -> Self {
        Self { seed: 0, drop_prob: 0.0, dup_prob: 0.0, delay_prob: 0.0, delay_secs: 0.0 }
    }

    /// True when every probability is zero.
    pub fn is_noop(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0 && self.delay_prob == 0.0
    }

    /// True when messages can be lost or duplicated (not merely delayed).
    pub fn is_lossy(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0
    }
}

/// A complete differential-test scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generating seed (0 for hand-built scenarios).
    pub seed: u64,
    /// The ensemble.
    pub workflows: Vec<WorkflowSpec>,
    /// Stagger between successive workflow submissions, virtual seconds.
    pub submission_interval_secs: f64,
    /// Worker daemons.
    pub workers: usize,
    /// Slots per worker daemon.
    pub slots_per_worker: usize,
    /// Engine shards (1 = the plain single engine). The differential
    /// paths drive a [`dewe_core::ShardedEngine`] when this exceeds 1, so
    /// the oracle continuously checks shard-count invariance.
    pub shards: usize,
    /// Drive the engine path through the thread-parallel
    /// [`dewe_core::ParallelShardedEngine`] in deterministic barrier
    /// mode instead of the sequential facade (only meaningful with
    /// `shards > 1`). Generated for half the sharded seeds, so the
    /// differential sweep continuously checks that the parallel driver
    /// is bit-identical to the baselines.
    pub parallel: bool,
    /// Retry cap (`None` = the paper's retry-forever).
    pub max_attempts: Option<u32>,
    /// Backoff before retries, virtual seconds.
    pub backoff_base_secs: f64,
    /// Chaos profile.
    pub chaos: ChaosSpec,
    /// Scripted per-job failures.
    pub failures: Vec<FailureSpec>,
    /// Timed fault schedule (worker crashes, spot revocations, heartbeat
    /// stalls, master kill/restart). Empty for the three classic seed
    /// classes; populated by [`Scenario::generate_fault`]. Fault times
    /// are scenario seconds on the `FAULT_HORIZON_SECS` axis — the
    /// engine path injects them in virtual time, the realtime path
    /// scales them to wall-clock milliseconds.
    pub faults: FaultPlan,
    /// Deadline-timer backend for every engine the scenario builds.
    /// Sampled half-and-half across seeds (independently of the other
    /// knobs), so the differential sweep continuously proves the
    /// hierarchical wheel and the binary heap produce identical action
    /// streams, stats, and terminal verdicts.
    pub timer_backend: TimerBackend,
    /// Drive the realtime path's master with batched dispatch publishes
    /// (`publish_dispatch_batch` + `DispatchBatch` wire frames) instead
    /// of per-job sends. Sampled half-and-half across seeds; the engine
    /// and sim paths ignore it (batching is a transport concern), so any
    /// divergence pins the blame on the batching layer.
    pub dispatch_batch: bool,
}

/// The analytically computed terminal verdict of a scenario: which jobs
/// must complete, dead-letter, or be abandoned once the ensemble settles.
/// Jobs are identified as `(workflow_index, job_index)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expected {
    /// Jobs that must reach `Completed`.
    pub completed: BTreeSet<(u32, u32)>,
    /// Jobs that must exhaust their retry budget.
    pub dead_lettered: BTreeSet<(u32, u32)>,
    /// Jobs written off because an ancestor dead-lettered (excludes the
    /// dead-lettered jobs themselves).
    pub abandoned: BTreeSet<(u32, u32)>,
}

/// How the inline random branch of [`sample_workflow`] sizes its DAGs.
#[derive(Clone, Copy)]
struct RandomProfile {
    /// Minimum job count.
    min_jobs: usize,
    /// Random extra jobs on top of the minimum.
    extra_jobs: usize,
    /// Per-pair edge probability.
    parent_prob: f64,
    /// Random runtime spread above the 0.05 s floor.
    cpu_spread: f64,
}

/// Classic oracle sizing: tiny DAGs shrink well.
const CLASSIC_PROFILE: RandomProfile =
    RandomProfile { min_jobs: 1, extra_jobs: 12, parent_prob: 0.35, cpu_spread: 0.95 };

/// Fault-class sizing: enough work that faults land mid-run.
const FAULT_PROFILE: RandomProfile =
    RandomProfile { min_jobs: 8, extra_jobs: 12, parent_prob: 0.25, cpu_spread: 0.55 };

/// Sample one workflow: a weighted mix of the inline random generator
/// (4 in 10 draws — it shrinks best, so it stays the workhorse) and one
/// slot each for the calibrated families plus the adversarial shapes.
/// Family configs are kept small (≲ 20 jobs) so scenarios stay
/// shrinkable and the realtime path's wall-clock stays bounded.
fn sample_workflow(rng: &mut Rng, profile: RandomProfile) -> WorkflowSpec {
    let wf_seed = rng.next_u64();
    match rng.below(10) {
        0..=3 => {
            let n_jobs = profile.min_jobs + rng.below(profile.extra_jobs);
            let mut jobs = Vec::with_capacity(n_jobs);
            for j in 0..n_jobs {
                let cpu_secs = 0.05 + rng.unit() * profile.cpu_spread;
                let mut parents = Vec::new();
                for p in 0..j {
                    if rng.unit() < profile.parent_prob {
                        parents.push(p as u32);
                    }
                }
                jobs.push(JobSpec { cpu_secs, parents });
            }
            WorkflowSpec { family: DagFamily::Random, jobs }
        }
        4 => WorkflowSpec::from_workflow(
            // Degree 0.2 is the smallest calibrated mosaic: 20 jobs
            // with the full project/diff/background/waist structure.
            &MontageConfig::degree(0.2).with_seed(wf_seed).build(),
            DagFamily::Montage,
        ),
        5 => WorkflowSpec::from_workflow(
            &CyberShakeConfig::new(1 + rng.below(4)).with_seed(wf_seed).build(),
            DagFamily::CyberShake,
        ),
        6 => WorkflowSpec::from_workflow(
            &EpigenomicsConfig::new(1, 1 + rng.below(2)).with_seed(wf_seed).build(),
            DagFamily::Epigenomics,
        ),
        7 => WorkflowSpec::from_workflow(
            &LigoConfig::new(1, 1 + rng.below(2)).with_seed(wf_seed).build(),
            DagFamily::Ligo,
        ),
        8 => WorkflowSpec::from_workflow(
            &SiphtConfig::new(1 + rng.below(4)).with_seed(wf_seed).build(),
            DagFamily::Sipht,
        ),
        _ => WorkflowSpec::from_workflow(
            &AdversarialConfig::from_seed(wf_seed, 6).build(),
            DagFamily::Adversarial,
        ),
    }
}

impl Scenario {
    /// Generate the scenario for `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut rng = Rng::new(seed ^ SCENARIO_SALT);
        let class = seed % 3;

        let n_wf = 1 + rng.below(3);
        let mut workflows = Vec::with_capacity(n_wf);
        for _ in 0..n_wf {
            workflows.push(sample_workflow(&mut rng, CLASSIC_PROFILE));
        }

        let submission_interval_secs = rng.unit() * 0.5;
        let workers = 1 + rng.below(3);
        let slots_per_worker = 1 + rng.below(4);
        // Half the seeds exercise the plain engine, half a sharded one;
        // of the sharded ones, half run the thread-parallel driver.
        let shards = [1, 1, 2, 4][rng.below(4)];
        let parallel = shards > 1 && rng.below(2) == 1;

        let (chaos, max_attempts, backoff_base_secs, failures) = match class {
            0 => (ChaosSpec::none(), None, 0.0, Vec::new()),
            1 => {
                let chaos = ChaosSpec {
                    seed: seed ^ 0xC4A5_11FE,
                    drop_prob: rng.unit() * 0.15,
                    dup_prob: rng.unit() * 0.15,
                    delay_prob: rng.unit() * 0.3,
                    delay_secs: 0.5,
                };
                (chaos, None, 0.0, Vec::new())
            }
            _ => {
                // Delay-only chaos: a lost or duplicated Failed ack would
                // desynchronize the retry-budget accounting (see module
                // docs), but a late one cannot.
                let chaos = ChaosSpec {
                    seed: seed ^ 0xC4A5_11FE,
                    drop_prob: 0.0,
                    dup_prob: 0.0,
                    delay_prob: rng.unit() * 0.3,
                    delay_secs: 0.05,
                };
                let cap = 1 + rng.below(3) as u32;
                let backoff = rng.unit() * 0.1;
                let total: usize = workflows.iter().map(|w| w.jobs.len()).sum();
                let n_failures = 1 + rng.below(3.min(total));
                let mut failures = Vec::new();
                let mut taken = BTreeSet::new();
                for _ in 0..n_failures {
                    let wf = rng.below(workflows.len()) as u32;
                    let job = rng.below(workflows[wf as usize].jobs.len()) as u32;
                    if taken.insert((wf, job)) {
                        failures.push(FailureSpec {
                            workflow: wf,
                            job,
                            failing_attempts: 1 + rng.below(4) as u32,
                        });
                    }
                }
                (chaos, Some(cap), backoff, failures)
            }
        };

        let (timer_backend, dispatch_batch) = sample_knobs(seed);
        Self {
            seed,
            workflows,
            submission_interval_secs,
            workers,
            slots_per_worker,
            shards,
            parallel,
            max_attempts,
            backoff_base_secs,
            chaos,
            failures,
            faults: FaultPlan::none(),
            timer_backend,
            dispatch_batch,
        }
    }

    /// Generate a **fault-plane** scenario for `seed`: a fixed four-worker
    /// pool, unbounded retries, at most delay-only chaos, and a seeded
    /// [`FaultPlan`] of worker crashes / spot revocations / heartbeat
    /// stalls / master kill+restart. With unbounded retries every job
    /// must still complete on every path — lease expiry (or the job
    /// timeout backstop) requeues whatever dies with a worker, and the
    /// journal brings a replacement master back to the identical state.
    pub fn generate_fault(seed: u64) -> Self {
        let mut rng = Rng::new(seed ^ FAULT_SCENARIO_SALT);

        // Larger ensembles than the classic classes, so faults land
        // mid-run instead of after the last ack.
        let n_wf = 1 + rng.below(2);
        let mut workflows = Vec::with_capacity(n_wf);
        for _ in 0..n_wf {
            workflows.push(sample_workflow(&mut rng, FAULT_PROFILE));
        }

        // Delay-only chaos for half the seeds: lost or duplicated
        // messages would make fault attribution ambiguous (a job could
        // be recovered by the ack-loss timeout instead of the lease
        // plane), but late messages compose cleanly with every fault.
        let chaos = if rng.below(2) == 1 {
            ChaosSpec {
                seed: seed ^ 0xC4A5_11FE,
                drop_prob: 0.0,
                dup_prob: 0.0,
                delay_prob: rng.unit() * 0.3,
                delay_secs: 0.2,
            }
        } else {
            ChaosSpec::none()
        };

        let workers = FAULT_WORKERS as usize;
        // Half the fault seeds run sharded; of those, half drive the
        // thread-parallel engines — the engine path's barrier driver and
        // the realtime free-running threaded master — so fault recovery
        // is fuzzed against the parallel serve loops too.
        let shards = [1, 2][rng.below(2)];
        let parallel = shards > 1 && rng.below(2) == 1;
        let (timer_backend, dispatch_batch) = sample_knobs(seed ^ FAULT_SCENARIO_SALT);
        Self {
            seed,
            workflows,
            submission_interval_secs: rng.unit() * 0.3,
            workers,
            slots_per_worker: 1 + rng.below(2),
            shards,
            parallel,
            max_attempts: None,
            backoff_base_secs: 0.0,
            chaos,
            failures: Vec::new(),
            faults: FaultPlan::generate(
                seed ^ FAULT_SCENARIO_SALT,
                FAULT_WORKERS,
                FAULT_HORIZON_SECS,
            ),
            timer_backend,
            dispatch_batch,
        }
    }

    /// Generate a **fault + lossy-chaos** scenario: exactly the fault
    /// scenario [`Scenario::generate_fault`] produces for `seed` — same
    /// ensemble, same fault plan — but with drop/dup/delay chaos layered
    /// on the message streams. This is the composition the fault class
    /// deliberately excludes (messages lost *during* a master outage,
    /// duplicated acks racing lease expiry); retries stay unbounded, so
    /// the analytic expectation is still "every job completes". Keeping
    /// the underlying scenario identical means a divergence here either
    /// reproduces under `--class fault` too, or names the lossy chaos as
    /// the trigger.
    pub fn generate_fault_chaos(seed: u64) -> Self {
        let mut s = Self::generate_fault(seed);
        let mut rng = Rng::new(seed ^ FAULT_CHAOS_SALT);
        s.chaos = ChaosSpec {
            seed: seed ^ FAULT_CHAOS_SALT,
            drop_prob: rng.unit() * 0.10,
            dup_prob: rng.unit() * 0.10,
            delay_prob: rng.unit() * 0.3,
            delay_secs: 0.2,
        };
        s
    }

    /// Total job count across the ensemble.
    pub fn total_jobs(&self) -> usize {
        self.workflows.iter().map(|w| w.jobs.len()).sum()
    }

    /// Scripted failing-attempt count for a job (0 = never fails).
    pub fn failing_attempts(&self, workflow: u32, job: u32) -> u32 {
        self.failures
            .iter()
            .find(|f| f.workflow == workflow && f.job == job)
            .map_or(0, |f| f.failing_attempts)
    }

    /// The terminal verdict every conforming execution path must reach.
    ///
    /// Computed in one forward pass per workflow: parents always precede
    /// children in index order, so each job's fate depends only on
    /// already-decided jobs. A job dead-letters iff its failure script
    /// outlasts the retry cap; it is abandoned iff any parent failed to
    /// complete; otherwise it completes.
    pub fn expected_outcome(&self) -> Expected {
        let mut completed = BTreeSet::new();
        let mut dead_lettered = BTreeSet::new();
        let mut abandoned = BTreeSet::new();
        for (w, wf) in self.workflows.iter().enumerate() {
            for (j, job) in wf.jobs.iter().enumerate() {
                let id = (w as u32, j as u32);
                if job.parents.iter().any(|&p| !completed.contains(&(w as u32, p))) {
                    abandoned.insert(id);
                    continue;
                }
                let fails = self.failing_attempts(id.0, id.1);
                if self.max_attempts.is_some_and(|cap| fails >= cap) {
                    dead_lettered.insert(id);
                } else {
                    completed.insert(id);
                }
            }
        }
        Expected { completed, dead_lettered, abandoned }
    }

    /// Longest cpu-weighted path through any single workflow — a lower
    /// bound on every path's makespan when all jobs run (no failures).
    pub fn critical_path_secs(&self) -> f64 {
        let mut best = 0.0f64;
        for wf in &self.workflows {
            let mut dist = vec![0.0f64; wf.jobs.len()];
            for (j, job) in wf.jobs.iter().enumerate() {
                let longest_parent =
                    job.parents.iter().map(|&p| dist[p as usize]).fold(0.0f64, f64::max);
                dist[j] = longest_parent + job.cpu_secs;
                best = best.max(dist[j]);
            }
        }
        best
    }

    /// Materialize the ensemble as real workflow DAGs.
    pub fn build_workflows(&self) -> Vec<Arc<Workflow>> {
        self.workflows
            .iter()
            .enumerate()
            .map(|(w, wf)| {
                let mut b = WorkflowBuilder::new(format!("wf{w}"));
                let mut ids = Vec::with_capacity(wf.jobs.len());
                for (j, job) in wf.jobs.iter().enumerate() {
                    let id = b.job(format!("j{j}"), "t", job.cpu_secs).build();
                    for &p in &job.parents {
                        b.edge(ids[p as usize], id);
                    }
                    ids.push(id);
                }
                Arc::new(b.finish().expect("generated DAG is topological by construction"))
            })
            .collect()
    }

    /// Compact human-readable dump, used by repro reports.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "seed {} | {} workflow(s), {} job(s) | workers {}x{} | shards {}{} | \
             interval {:.3}s | max_attempts {:?} | backoff {:.3}s",
            self.seed,
            self.workflows.len(),
            self.total_jobs(),
            self.workers,
            self.slots_per_worker,
            self.shards,
            if self.parallel { " (parallel)" } else { "" },
            self.submission_interval_secs,
            self.max_attempts,
            self.backoff_base_secs,
        );
        let _ = writeln!(
            s,
            "chaos: seed {} drop {:.3} dup {:.3} delay {:.3} ({:.3}s)",
            self.chaos.seed,
            self.chaos.drop_prob,
            self.chaos.dup_prob,
            self.chaos.delay_prob,
            self.chaos.delay_secs,
        );
        for (w, wf) in self.workflows.iter().enumerate() {
            let _ = writeln!(s, "  wf{w}: family {}", wf.family.name());
            for (j, job) in wf.jobs.iter().enumerate() {
                let _ =
                    writeln!(s, "  wf{w} j{j}: cpu {:.3}s parents {:?}", job.cpu_secs, job.parents);
            }
        }
        for f in &self.failures {
            let _ = writeln!(
                s,
                "  fail: wf{} j{} first {} attempt(s)",
                f.workflow, f.job, f.failing_attempts
            );
        }
        if !self.faults.is_empty() {
            let _ = writeln!(s, "faults: {}", self.faults.describe());
        }
        s
    }
}

/// Decorrelates scenario-shape draws from the raw seed (which also feeds
/// the chaos decider and backoff jitter).
const SCENARIO_SALT: u64 = 0xD1FF_E7E4_7E57_0001;

/// Salt for the timer-backend / dispatch-batch knobs. A dedicated stream
/// keeps the knob draws from perturbing the scenario content (DAGs,
/// chaos, failures), so every seed reproduces the exact ensembles it
/// generated before the knobs existed.
const KNOB_SALT: u64 = 0x71E4_BACE_7E57_0004;

/// Draw the timer-backend and dispatch-batch knobs for `seed` from their
/// own stream (see [`KNOB_SALT`]).
fn sample_knobs(seed: u64) -> (TimerBackend, bool) {
    let mut rng = Rng::new(seed ^ KNOB_SALT);
    let backend = if rng.below(2) == 1 { TimerBackend::Wheel } else { TimerBackend::Heap };
    (backend, rng.below(2) == 1)
}

/// Separate salt for the fault class, so `generate(n)` and
/// `generate_fault(n)` are unrelated scenarios.
const FAULT_SCENARIO_SALT: u64 = 0xFA17_7000_7E57_0002;

/// Salt for the lossy-chaos overlay of the fault+chaos class. Only the
/// chaos profile draws from it — the ensemble and fault plan stay those
/// of `generate_fault(seed)`.
const FAULT_CHAOS_SALT: u64 = 0xFA17_C4A0_7E57_0003;

/// Worker pool size for fault scenarios: big enough that the generated
/// plan can kill several workers and still leave a survivor.
pub const FAULT_WORKERS: u32 = 4;

/// The scenario-time axis fault schedules are generated on. Paths map it
/// onto their own clocks: virtual seconds for the engine driver,
/// wall-clock milliseconds (see `paths::realtime`) for the threaded
/// stack.
pub const FAULT_HORIZON_SECS: f64 = 5.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(17);
        let b = Scenario::generate(17);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn classes_partition_by_seed() {
        let clean = Scenario::generate(0);
        assert!(clean.chaos.is_noop() && clean.failures.is_empty());
        let chaotic = Scenario::generate(1);
        assert!(chaotic.max_attempts.is_none());
        let failing = Scenario::generate(2);
        assert!(failing.max_attempts.is_some() && !failing.failures.is_empty());
        assert!(!failing.chaos.is_lossy(), "retry-cap scenarios must not lose Failed acks");
    }

    #[test]
    fn expected_outcome_partitions_all_jobs() {
        for seed in 0..60 {
            let s = Scenario::generate(seed);
            let e = s.expected_outcome();
            let total = e.completed.len() + e.dead_lettered.len() + e.abandoned.len();
            assert_eq!(total, s.total_jobs(), "seed {seed}");
            assert!(e.completed.is_disjoint(&e.dead_lettered));
            assert!(e.completed.is_disjoint(&e.abandoned));
        }
    }

    #[test]
    fn abandonment_follows_dead_parents_transitively() {
        // j0 -> j1 -> j2 chain; j0 dead-letters, so j1 and j2 abandon.
        let s = Scenario {
            seed: 0,
            workflows: vec![WorkflowSpec {
                family: DagFamily::Random,
                jobs: vec![
                    JobSpec { cpu_secs: 0.1, parents: vec![] },
                    JobSpec { cpu_secs: 0.1, parents: vec![0] },
                    JobSpec { cpu_secs: 0.1, parents: vec![1] },
                ],
            }],
            submission_interval_secs: 0.0,
            workers: 1,
            slots_per_worker: 1,
            shards: 1,
            parallel: false,
            max_attempts: Some(2),
            backoff_base_secs: 0.0,
            chaos: ChaosSpec::none(),
            failures: vec![FailureSpec { workflow: 0, job: 0, failing_attempts: 2 }],
            faults: FaultPlan::none(),
            timer_backend: TimerBackend::default(),
            dispatch_batch: false,
        };
        let e = s.expected_outcome();
        assert_eq!(e.dead_lettered.iter().collect::<Vec<_>>(), vec![&(0, 0)]);
        assert_eq!(e.abandoned.len(), 2);
        assert!(e.completed.is_empty());
    }

    #[test]
    fn built_workflows_match_specs() {
        let s = Scenario::generate(5);
        let wfs = s.build_workflows();
        assert_eq!(wfs.len(), s.workflows.len());
        for (spec, wf) in s.workflows.iter().zip(&wfs) {
            assert_eq!(spec.jobs.len(), wf.job_count());
            let edges: usize = spec.jobs.iter().map(|j| j.parents.len()).sum();
            assert_eq!(edges, wf.edge_count());
        }
    }

    #[test]
    fn fault_class_is_deterministic_and_recoverable() {
        for seed in 0..32 {
            let a = Scenario::generate_fault(seed);
            let b = Scenario::generate_fault(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            // Unbounded retries + no failure scripts: the analytic
            // expectation is "everything completes", faults or not.
            assert!(a.max_attempts.is_none() && a.failures.is_empty(), "seed {seed}");
            assert!(!a.chaos.is_lossy(), "seed {seed}: fault class must not lose messages");
            let e = a.expected_outcome();
            assert_eq!(e.completed.len(), a.total_jobs(), "seed {seed}");
            assert_eq!(a.workers, FAULT_WORKERS as usize);
            // Every targeted worker exists in the pool, and at least one
            // worker survives the lethal events.
            for f in &a.faults.events {
                if let Some(w) = f.event.worker() {
                    assert!((w as usize) < a.workers, "seed {seed}");
                }
            }
            assert!(
                a.faults.lethal_workers().len() < a.workers,
                "seed {seed}: no survivor in {}",
                a.faults.describe()
            );
        }
    }

    #[test]
    fn critical_path_bounds_hold() {
        let s = Scenario::generate(3);
        let cp = s.critical_path_secs();
        let serial: f64 = s.workflows.iter().flat_map(|w| &w.jobs).map(|j| j.cpu_secs).sum();
        assert!(cp > 0.0 && cp <= serial + 1e-9);
    }

    #[test]
    fn every_family_appears_in_a_modest_seed_range() {
        let mut seen = BTreeSet::new();
        for seed in 0..256 {
            for wf in &Scenario::generate(seed).workflows {
                seen.insert(wf.family.name());
            }
        }
        for fam in DagFamily::ALL {
            assert!(seen.contains(fam.name()), "family {} never sampled", fam.name());
        }
    }

    #[test]
    fn family_specs_are_topological_and_bounded() {
        for seed in 0..256 {
            for scenario in [Scenario::generate(seed), Scenario::generate_fault(seed)] {
                for (w, wf) in scenario.workflows.iter().enumerate() {
                    assert!(!wf.jobs.is_empty());
                    assert!(wf.jobs.len() <= 24, "seed {seed} wf{w}: {} jobs", wf.jobs.len());
                    for (j, job) in wf.jobs.iter().enumerate() {
                        assert!(
                            job.cpu_secs >= 0.05 - 1e-12 && job.cpu_secs <= 1.0 + 1e-12,
                            "seed {seed} wf{w} j{j}: cpu {}",
                            job.cpu_secs
                        );
                        for &p in &job.parents {
                            assert!((p as usize) < j, "seed {seed} wf{w} j{j}: parent {p}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn from_workflow_preserves_edges_and_normalizes_runtimes() {
        let wf = CyberShakeConfig::new(4).with_seed(9).build();
        let spec = WorkflowSpec::from_workflow(&wf, DagFamily::CyberShake);
        assert_eq!(spec.family, DagFamily::CyberShake);
        assert_eq!(spec.jobs.len(), wf.job_count());
        let edges: usize = spec.jobs.iter().map(|j| j.parents.len()).sum();
        assert_eq!(edges, wf.edge_count());
        // Rebuilding through build_workflows round-trips the edge count.
        let s = Scenario {
            seed: 0,
            workflows: vec![spec],
            submission_interval_secs: 0.0,
            workers: 1,
            slots_per_worker: 1,
            shards: 1,
            parallel: false,
            max_attempts: None,
            backoff_base_secs: 0.0,
            chaos: ChaosSpec::none(),
            failures: Vec::new(),
            faults: FaultPlan::none(),
            timer_backend: TimerBackend::default(),
            dispatch_batch: false,
        };
        let rebuilt = s.build_workflows();
        assert_eq!(rebuilt[0].edge_count(), wf.edge_count());
    }

    #[test]
    fn fault_chaos_class_overlays_lossy_chaos_on_the_fault_scenario() {
        let mut lossy = 0;
        for seed in 0..32 {
            let base = Scenario::generate_fault(seed);
            let composed = Scenario::generate_fault_chaos(seed);
            // Same ensemble, same fault plan — only the chaos differs.
            assert_eq!(format!("{:?}", base.workflows), format!("{:?}", composed.workflows));
            assert_eq!(base.faults, composed.faults, "seed {seed}");
            assert!(composed.max_attempts.is_none() && composed.failures.is_empty());
            if composed.chaos.is_lossy() {
                lossy += 1;
            }
            // Unbounded retries: the expectation is still full completion.
            let e = composed.expected_outcome();
            assert_eq!(e.completed.len(), composed.total_jobs(), "seed {seed}");
            // Deterministic.
            let again = Scenario::generate_fault_chaos(seed);
            assert_eq!(format!("{composed:?}"), format!("{again:?}"));
        }
        assert!(lossy >= 24, "the overlay should almost always be lossy: {lossy}/32");
    }
}
