//! Greedy scenario shrinking: reduce a diverging scenario to a minimal
//! repro while the divergence keeps reproducing.
//!
//! The reduction passes, applied to fixpoint:
//!
//! 1. drop whole workflows (failure specs are re-indexed);
//! 2. drop individual jobs (children lose the edge, later parents and
//!    failure specs are re-indexed);
//! 3. drop failure specs;
//! 4. drop injected fault events;
//! 5. switch chaos off entirely, then zero the scheduling knobs
//!    (submission stagger, backoff).
//!
//! `diverges` is the caller's oracle: it must return `true` while the
//! candidate still exhibits the original divergence. The shrinker only
//! ever *keeps* a candidate the oracle confirmed, so the result always
//! reproduces. At least one workflow with at least one job is preserved.

use crate::scenario::Scenario;

/// Remove workflow `w`, re-indexing failure specs.
fn remove_workflow(s: &Scenario, w: usize) -> Scenario {
    let mut out = s.clone();
    out.workflows.remove(w);
    out.failures.retain(|f| f.workflow != w as u32);
    for f in &mut out.failures {
        if f.workflow > w as u32 {
            f.workflow -= 1;
        }
    }
    out
}

/// Remove job `j` of workflow `w`, splicing it out of later jobs' parent
/// lists and re-indexing failure specs.
fn remove_job(s: &Scenario, w: usize, j: usize) -> Scenario {
    let mut out = s.clone();
    let wf = &mut out.workflows[w];
    wf.jobs.remove(j);
    for job in wf.jobs.iter_mut().skip(j) {
        job.parents.retain(|&p| p != j as u32);
        for p in &mut job.parents {
            if *p > j as u32 {
                *p -= 1;
            }
        }
    }
    out.failures.retain(|f| !(f.workflow == w as u32 && f.job == j as u32));
    for f in &mut out.failures {
        if f.workflow == w as u32 && f.job > j as u32 {
            f.job -= 1;
        }
    }
    out
}

/// Shrink `initial` (which must diverge) to a locally minimal scenario
/// that still diverges.
pub fn minimize(initial: &Scenario, diverges: &dyn Fn(&Scenario) -> bool) -> Scenario {
    let mut cur = initial.clone();
    loop {
        let mut changed = false;

        let mut w = 0;
        while cur.workflows.len() > 1 && w < cur.workflows.len() {
            let cand = remove_workflow(&cur, w);
            if diverges(&cand) {
                cur = cand;
                changed = true;
            } else {
                w += 1;
            }
        }

        for w in 0..cur.workflows.len() {
            let mut j = 0;
            while cur.workflows[w].jobs.len() > 1 && j < cur.workflows[w].jobs.len() {
                let cand = remove_job(&cur, w, j);
                if diverges(&cand) {
                    cur = cand;
                    changed = true;
                } else {
                    j += 1;
                }
            }
        }

        let mut f = 0;
        while f < cur.failures.len() {
            let mut cand = cur.clone();
            cand.failures.remove(f);
            if diverges(&cand) {
                cur = cand;
                changed = true;
            } else {
                f += 1;
            }
        }

        // Drop injected faults one at a time. Removing an event only
        // ever makes the plan less lethal, so the generator's survivor
        // guarantee is preserved by construction.
        let mut fe = 0;
        while fe < cur.faults.events.len() {
            let mut cand = cur.clone();
            cand.faults.events.remove(fe);
            if diverges(&cand) {
                cur = cand;
                changed = true;
            } else {
                fe += 1;
            }
        }

        if !cur.chaos.is_noop() {
            let mut cand = cur.clone();
            cand.chaos = crate::scenario::ChaosSpec::none();
            if diverges(&cand) {
                cur = cand;
                changed = true;
            }
        }
        if cur.submission_interval_secs != 0.0 {
            let mut cand = cur.clone();
            cand.submission_interval_secs = 0.0;
            if diverges(&cand) {
                cur = cand;
                changed = true;
            }
        }
        if cur.backoff_base_secs != 0.0 {
            let mut cand = cur.clone();
            cand.backoff_base_secs = 0.0;
            if diverges(&cand) {
                cur = cand;
                changed = true;
            }
        }

        if !changed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ChaosSpec, DagFamily, FailureSpec, JobSpec, WorkflowSpec};
    use dewe_core::fault::{FaultEvent, FaultPlan, TimedFault};

    fn big_scenario() -> Scenario {
        let wf = |n: usize| WorkflowSpec {
            family: DagFamily::Random,
            jobs: (0..n)
                .map(|j| JobSpec {
                    cpu_secs: 0.1,
                    parents: if j > 0 { vec![j as u32 - 1] } else { vec![] },
                })
                .collect(),
        };
        Scenario {
            seed: 0,
            workflows: vec![wf(5), wf(4), wf(3)],
            submission_interval_secs: 0.2,
            workers: 2,
            slots_per_worker: 2,
            shards: 2,
            parallel: false,
            max_attempts: Some(2),
            backoff_base_secs: 0.05,
            chaos: ChaosSpec {
                seed: 1,
                drop_prob: 0.0,
                dup_prob: 0.0,
                delay_prob: 0.2,
                delay_secs: 0.05,
            },
            failures: vec![FailureSpec { workflow: 1, job: 2, failing_attempts: 3 }],
            faults: FaultPlan {
                events: vec![
                    TimedFault { at_secs: 0.5, event: FaultEvent::WorkerCrash { worker: 0 } },
                    TimedFault {
                        at_secs: 1.0,
                        event: FaultEvent::MasterKill { restart_delay_secs: 0.2 },
                    },
                ],
            },
            timer_backend: dewe_core::TimerBackend::default(),
            dispatch_batch: false,
        }
    }

    #[test]
    fn shrinks_to_single_job_when_anything_diverges() {
        // Oracle that "diverges" on every non-empty scenario: the shrinker
        // must drive the scenario to its 1-workflow / 1-job floor.
        let min = minimize(&big_scenario(), &|_| true);
        assert_eq!(min.workflows.len(), 1);
        assert_eq!(min.workflows[0].jobs.len(), 1);
        assert!(min.failures.is_empty());
        assert!(min.faults.is_empty());
        assert!(min.chaos.is_noop());
        assert_eq!(min.submission_interval_secs, 0.0);
    }

    #[test]
    fn preserves_the_fault_the_divergence_needs() {
        // Divergence requires the master kill to survive shrinking; the
        // worker crash must be dropped.
        let diverges = |s: &Scenario| s.faults.has_master_kill();
        let min = minimize(&big_scenario(), &diverges);
        assert_eq!(min.faults.events.len(), 1);
        assert!(min.faults.has_master_kill());
    }

    #[test]
    fn preserves_what_the_divergence_needs() {
        // Divergence requires the scripted failure to survive: shrinking
        // must keep workflow 1's job 2 (possibly re-indexed) and the spec.
        let diverges = |s: &Scenario| {
            s.failures.iter().any(|f| {
                f.failing_attempts == 3
                    && s.workflows
                        .get(f.workflow as usize)
                        .is_some_and(|w| (f.job as usize) < w.jobs.len())
            })
        };
        let min = minimize(&big_scenario(), &diverges);
        assert_eq!(min.failures.len(), 1);
        assert_eq!(min.workflows.len(), 1);
        assert_eq!(min.workflows[0].jobs.len(), 1);
        assert_eq!(min.failures[0].job, 0);
    }

    #[test]
    fn job_removal_reindexes_parents() {
        let s = big_scenario();
        let out = remove_job(&s, 0, 1); // chain 0-1-2-3-4, drop job 1
        let jobs = &out.workflows[0].jobs;
        assert_eq!(jobs.len(), 4);
        // Old job 2 (now index 1) lost its parent edge to removed job 1.
        assert!(jobs[1].parents.is_empty());
        // Old job 3 (now index 2) kept its chain edge, re-indexed 2 -> 1.
        assert_eq!(jobs[2].parents, vec![1]);
    }
}
