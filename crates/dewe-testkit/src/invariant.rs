//! The shared invariant suite every execution path is checked against.
//!
//! All three paths reduce their run to the same [`PathOutcome`] shape: an
//! ordered start/finish event log, the terminal per-job verdict, and
//! (where available) engine statistics. [`check`] then applies the
//! invariants that make sense for that path:
//!
//! 1. **Settlement** — the run reached a terminal verdict (no stall).
//! 2. **Terminal partition** — the set of completed jobs equals the
//!    scenario's analytic expectation; no lost jobs (expected-complete but
//!    missing) and no phantom jobs (completed but never expected, or
//!    events for jobs outside the scenario).
//! 3. **Dependency order** — in event-log order, every job's first start
//!    comes after each parent's first finish; abandoned jobs never start.
//! 4. **Conservation** — engine statistics balance: every dispatch is
//!    either a first attempt of a job that terminated (completed or
//!    dead-lettered) or a counted resubmission, and the per-workflow
//!    terminal counters sum to the submitted total.
//! 5. **Makespan sanity** — simulated makespans are bounded below by the
//!    cpu-weighted critical path (only checked for failure-free
//!    scenarios, where every job runs).
//! 6. **Fault plane** — for fault-class scenarios: lease-expiry requeues
//!    are conserved into engine resubmissions (or fenced as stale),
//!    fenced acks imply an expiry happened, and a master kill/restart
//!    resumed from state equivalent to the pre-kill master.

use std::collections::{BTreeMap, BTreeSet};

use dewe_core::realtime::MasterStats;
use dewe_core::EngineStats;

use crate::scenario::Scenario;

/// Which execution path produced an outcome; selects which invariants
/// apply (the baseline models no failures, so it is expected to run
/// everything; the realtime path has no virtual clock, so no makespan
/// bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// The sans-IO [`dewe_core::EnsembleEngine`] driven in
    /// virtual time.
    Engine,
    /// The modeled Pegasus/DAGMan/Condor scheduler.
    Baseline,
    /// The threaded master/worker stack over the in-process bus.
    Realtime,
    /// The discrete-event simulation runtime over the `dewe-simcloud`
    /// cluster model.
    Sim,
}

impl PathKind {
    /// Display name used in violation messages.
    pub fn name(self) -> &'static str {
        match self {
            PathKind::Engine => "engine",
            PathKind::Baseline => "baseline",
            PathKind::Realtime => "realtime",
            PathKind::Sim => "sim",
        }
    }
}

/// One entry of a path's ordered execution log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An attempt of the job began executing.
    Started {
        /// `(workflow_index, job_index)`.
        job: (u32, u32),
    },
    /// An attempt of the job ran to successful completion.
    Finished {
        /// `(workflow_index, job_index)`.
        job: (u32, u32),
    },
}

/// What one execution path observed for one scenario.
#[derive(Debug, Clone)]
pub struct PathOutcome {
    /// Which path ran.
    pub kind: PathKind,
    /// Jobs whose terminal verdict is Completed.
    pub completed: BTreeSet<(u32, u32)>,
    /// Ordered execution log (order is the path's own processing order,
    /// with cross-thread happens-before preserved).
    pub events: Vec<Event>,
    /// Engine statistics, for paths backed by [`EnsembleEngine`]
    /// (`None` for the baseline).
    ///
    /// [`EnsembleEngine`]: dewe_core::EnsembleEngine
    pub stats: Option<EngineStats>,
    /// Simulated makespan, for virtual-time paths.
    pub makespan_secs: Option<f64>,
    /// The run reached a terminal verdict (false = stall / watchdog).
    pub settled: bool,
    /// Fault-plane counters from the master's liveness table, for the
    /// realtime path when leases are enabled (`None` elsewhere).
    pub master_stats: Option<MasterStats>,
    /// Master kill/restart verdict: `Some(true)` when the path verified
    /// that recovery resumed from state equivalent to the pre-kill
    /// master (engine path: replayed engine is bit-identical; realtime
    /// path: every pre-kill liveness row survives into the final
    /// table), `Some(false)` on mismatch, `None` when no master kill
    /// fired.
    pub liveness_recovery: Option<bool>,
    /// Free-form diagnostics (stall context, chaos counters).
    pub note: Option<String>,
}

/// Check one path's outcome against the scenario's expectations,
/// returning human-readable violations (empty = conforming).
pub fn check(scenario: &Scenario, outcome: &PathOutcome) -> Vec<String> {
    let mut violations = Vec::new();
    let path = outcome.kind.name();
    let v = &mut violations;

    if !outcome.settled {
        v.push(format!(
            "{path}: did not settle{}",
            outcome.note.as_deref().map(|n| format!(" ({n})")).unwrap_or_default()
        ));
        // A stalled run's partial sets would drown the report in
        // secondary violations; the stall is the finding.
        return violations;
    }

    let expected = match outcome.kind {
        // The baseline stack models no failures or chaos: it must simply
        // run every job exactly once.
        PathKind::Baseline => {
            let mut all = Scenario::expected_outcome(scenario);
            for job in all.dead_lettered.iter().chain(all.abandoned.iter()) {
                all.completed.insert(*job);
            }
            all.dead_lettered.clear();
            all.abandoned.clear();
            all
        }
        PathKind::Engine | PathKind::Realtime | PathKind::Sim => scenario.expected_outcome(),
    };

    // 2. Terminal partition: no lost jobs, no phantom jobs.
    for job in expected.completed.difference(&outcome.completed) {
        v.push(format!("{path}: lost job wf{} j{} (expected complete)", job.0, job.1));
    }
    for job in outcome.completed.difference(&expected.completed) {
        v.push(format!("{path}: phantom completion wf{} j{}", job.0, job.1));
    }

    // Event-log bookkeeping: first positions, multiplicities, validity.
    let mut first_start: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    let mut first_finish: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    let mut finish_count: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for (pos, ev) in outcome.events.iter().enumerate() {
        let job = match *ev {
            Event::Started { job } => {
                first_start.entry(job).or_insert(pos);
                job
            }
            Event::Finished { job } => {
                first_finish.entry(job).or_insert(pos);
                *finish_count.entry(job).or_insert(0) += 1;
                if !first_start.contains_key(&job) {
                    v.push(format!("{path}: wf{} j{} finished before starting", job.0, job.1));
                }
                job
            }
        };
        let known =
            scenario.workflows.get(job.0 as usize).is_some_and(|w| (job.1 as usize) < w.jobs.len());
        if !known {
            v.push(format!("{path}: event for unknown job wf{} j{}", job.0, job.1));
        }
    }

    // Executed-but-unfinished consistency: every finish implies the
    // terminal verdict, every completion implies a finish.
    for job in finish_count.keys() {
        if !outcome.completed.contains(job) {
            v.push(format!(
                "{path}: wf{} j{} finished executing but is not terminally complete",
                job.0, job.1
            ));
        }
    }
    for job in &outcome.completed {
        if !finish_count.contains_key(job) {
            v.push(format!(
                "{path}: wf{} j{} terminally complete but never finished executing",
                job.0, job.1
            ));
        }
    }

    // 3. Dependency order and abandonment.
    for (w, wf) in scenario.workflows.iter().enumerate() {
        for (j, job) in wf.jobs.iter().enumerate() {
            let child = (w as u32, j as u32);
            let Some(&child_start) = first_start.get(&child) else { continue };
            for &p in &job.parents {
                let parent = (w as u32, p);
                match first_finish.get(&parent) {
                    Some(&pf) if pf < child_start => {}
                    Some(_) | None => v.push(format!(
                        "{path}: dependency violated — wf{w} j{j} started before parent j{p} \
                         finished"
                    )),
                }
            }
        }
    }
    for job in &expected.abandoned {
        if first_start.contains_key(job) {
            v.push(format!(
                "{path}: abandoned job wf{} j{} was dispatched and started",
                job.0, job.1
            ));
        }
    }

    // Exactly-once execution wherever nothing can force a re-run: the
    // baseline always (it has no retry path at all), the engine and sim
    // paths when neither chaos, scripted failures, nor injected faults
    // exist (a crashed worker's jobs legitimately execute twice).
    let exactly_once = outcome.kind == PathKind::Baseline
        || (matches!(outcome.kind, PathKind::Engine | PathKind::Sim)
            && scenario.chaos.is_noop()
            && scenario.failures.is_empty()
            && scenario.faults.is_empty());
    if exactly_once {
        for (job, &n) in &finish_count {
            if n != 1 {
                v.push(format!("{path}: wf{} j{} executed {n} times", job.0, job.1));
            }
        }
    }

    // 4. Conservation of statistics.
    if let Some(stats) = outcome.stats {
        let n_wf = scenario.workflows.len();
        if stats.workflows_submitted != n_wf {
            v.push(format!(
                "{path}: submitted {} workflows, scenario has {n_wf}",
                stats.workflows_submitted
            ));
        }
        if stats.workflows_completed + stats.workflows_abandoned != n_wf {
            v.push(format!(
                "{path}: workflow terminal counts {} + {} != {n_wf}",
                stats.workflows_completed, stats.workflows_abandoned
            ));
        }
        if stats.jobs_completed != expected.completed.len() as u64 {
            v.push(format!(
                "{path}: stats.jobs_completed {} != expected {}",
                stats.jobs_completed,
                expected.completed.len()
            ));
        }
        if stats.dead_lettered != expected.dead_lettered.len() as u64 {
            v.push(format!(
                "{path}: stats.dead_lettered {} != expected {}",
                stats.dead_lettered,
                expected.dead_lettered.len()
            ));
        }
        let write_offs = (expected.dead_lettered.len() + expected.abandoned.len()) as u64;
        if stats.jobs_abandoned != write_offs {
            v.push(format!(
                "{path}: stats.jobs_abandoned {} != expected write-offs {write_offs}",
                stats.jobs_abandoned
            ));
        }
        // Every dispatch is a first attempt of a job that terminated
        // after execution (completed or dead-lettered) or a counted
        // resubmission; abandoned jobs are never dispatched.
        let accounted = stats.resubmissions + stats.jobs_completed + stats.dead_lettered;
        if stats.dispatches != accounted {
            v.push(format!(
                "{path}: dispatch conservation broken — {} dispatched, {} accounted \
                 (resubmissions {} + completed {} + dead-lettered {})",
                stats.dispatches,
                accounted,
                stats.resubmissions,
                stats.jobs_completed,
                stats.dead_lettered
            ));
        }
    }

    // 6. Fault plane. Requeue conservation: every job the liveness
    // plane requeued on lease expiry either became an engine
    // resubmission or was already superseded (a stale Failed the engine
    // fenced). A requeue that is neither would be a silently dropped
    // recovery — exactly the lost-job class the lease plane exists to
    // prevent.
    if let (Some(ms), Some(stats)) = (outcome.master_stats, outcome.stats) {
        let absorbed = stats.resubmissions + stats.stale_failures_ignored;
        if ms.jobs_requeued_on_expiry > absorbed {
            v.push(format!(
                "{path}: requeue conservation broken — {} requeued on expiry, only {} absorbed \
                 (resubmissions {} + stale-failures {})",
                ms.jobs_requeued_on_expiry,
                absorbed,
                stats.resubmissions,
                stats.stale_failures_ignored
            ));
        }
        if ms.stale_acks_rejected > 0 && ms.workers_expired == 0 {
            v.push(format!(
                "{path}: {} acks fenced as stale but no worker ever expired",
                ms.stale_acks_rejected
            ));
        }
    }
    // Master kill/restart: the path verified recovery equivalence itself
    // (replayed engine state, surviving liveness rows); it reports the
    // verdict here.
    if outcome.liveness_recovery == Some(false) {
        v.push(format!(
            "{path}: master restart diverged from pre-kill state{}",
            outcome.note.as_deref().map(|n| format!(" ({n})")).unwrap_or_default()
        ));
    }

    // 5. Makespan sanity (virtual-time paths, failure-free scenarios).
    if scenario.failures.is_empty() {
        if let Some(makespan) = outcome.makespan_secs {
            let floor = scenario.critical_path_secs();
            // Slack covers clock quantization: the sim path's clock is
            // `Duration`-backed, so a long dependency chain can land a
            // few microseconds under the f64-summed floor. A real
            // violation is off by the order of a job runtime (≥ 50 ms).
            if makespan + 1e-4 < floor {
                v.push(format!(
                    "{path}: makespan {makespan:.6}s below critical-path floor {floor:.6}s"
                ));
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ChaosSpec, DagFamily, JobSpec, WorkflowSpec};

    fn chain_scenario() -> Scenario {
        Scenario {
            seed: 0,
            workflows: vec![WorkflowSpec {
                family: DagFamily::Random,
                jobs: vec![
                    JobSpec { cpu_secs: 1.0, parents: vec![] },
                    JobSpec { cpu_secs: 1.0, parents: vec![0] },
                ],
            }],
            submission_interval_secs: 0.0,
            workers: 1,
            slots_per_worker: 1,
            shards: 1,
            parallel: false,
            max_attempts: None,
            backoff_base_secs: 0.0,
            chaos: ChaosSpec::none(),
            failures: vec![],
            faults: dewe_core::fault::FaultPlan::none(),
            timer_backend: dewe_core::TimerBackend::default(),
            dispatch_batch: false,
        }
    }

    fn conforming_outcome(kind: PathKind) -> PathOutcome {
        PathOutcome {
            kind,
            completed: [(0, 0), (0, 1)].into_iter().collect(),
            events: vec![
                Event::Started { job: (0, 0) },
                Event::Finished { job: (0, 0) },
                Event::Started { job: (0, 1) },
                Event::Finished { job: (0, 1) },
            ],
            stats: None,
            makespan_secs: Some(2.5),
            settled: true,
            master_stats: None,
            liveness_recovery: None,
            note: None,
        }
    }

    #[test]
    fn conforming_run_has_no_violations() {
        let s = chain_scenario();
        assert!(check(&s, &conforming_outcome(PathKind::Engine)).is_empty());
        assert!(check(&s, &conforming_outcome(PathKind::Baseline)).is_empty());
    }

    #[test]
    fn lost_job_is_flagged() {
        let s = chain_scenario();
        let mut o = conforming_outcome(PathKind::Engine);
        o.completed.remove(&(0, 1));
        o.events.truncate(3);
        let v = check(&s, &o);
        assert!(v.iter().any(|m| m.contains("lost job")), "{v:?}");
    }

    #[test]
    fn dependency_violation_is_flagged() {
        let s = chain_scenario();
        let mut o = conforming_outcome(PathKind::Engine);
        o.events.swap(1, 2); // child starts before parent finishes
        let v = check(&s, &o);
        assert!(v.iter().any(|m| m.contains("dependency violated")), "{v:?}");
    }

    #[test]
    fn stall_short_circuits() {
        let s = chain_scenario();
        let mut o = conforming_outcome(PathKind::Realtime);
        o.settled = false;
        let v = check(&s, &o);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("did not settle"));
    }

    #[test]
    fn makespan_below_critical_path_is_flagged() {
        let s = chain_scenario();
        let mut o = conforming_outcome(PathKind::Engine);
        o.makespan_secs = Some(0.5); // floor is 2.0
        let v = check(&s, &o);
        assert!(v.iter().any(|m| m.contains("critical-path floor")), "{v:?}");
    }

    #[test]
    fn broken_requeue_conservation_is_flagged() {
        let s = chain_scenario();
        let mut o = conforming_outcome(PathKind::Realtime);
        o.stats = Some(EngineStats {
            workflows_submitted: 1,
            workflows_completed: 1,
            jobs_completed: 2,
            dispatches: 2,
            ..Default::default()
        });
        // Three requeues but zero resubmissions absorbed them.
        o.master_stats = Some(MasterStats { jobs_requeued_on_expiry: 3, ..Default::default() });
        let v = check(&s, &o);
        assert!(v.iter().any(|m| m.contains("requeue conservation")), "{v:?}");
    }

    #[test]
    fn failed_recovery_equivalence_is_flagged() {
        let s = chain_scenario();
        let mut o = conforming_outcome(PathKind::Realtime);
        o.liveness_recovery = Some(false);
        let v = check(&s, &o);
        assert!(v.iter().any(|m| m.contains("master restart diverged")), "{v:?}");
        o.liveness_recovery = Some(true);
        assert!(check(&s, &o).is_empty());
    }

    #[test]
    fn double_execution_is_flagged_for_clean_engine_runs() {
        let s = chain_scenario();
        let mut o = conforming_outcome(PathKind::Engine);
        o.events.push(Event::Started { job: (0, 1) });
        o.events.push(Event::Finished { job: (0, 1) });
        let v = check(&s, &o);
        assert!(v.iter().any(|m| m.contains("executed 2 times")), "{v:?}");
    }
}
