//! Differential smoke suite: seeded scenarios through all four
//! execution paths, plus the oracle's own mutation self-tests.

use dewe_core::fault::{FaultEvent, FaultPlan, TimedFault};
use dewe_testkit::scenario::{ChaosSpec, DagFamily, JobSpec, WorkflowSpec};
use dewe_testkit::{
    minimize, run_fault_chaos_seed, run_fault_seed, run_scenario, run_seed, EngineDriverConfig,
    PathKind, Scenario,
};

/// Every seed in the smoke set must conform across engine, baseline,
/// realtime, and sim. `DEWE_DIFF_SEEDS` widens the sweep (CI runs the release
/// binary for the big sweeps; this keeps the in-tree floor).
#[test]
fn differential_smoke_zero_divergence() {
    let seeds: u64 =
        std::env::var("DEWE_DIFF_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
    let mut diverged = Vec::new();
    for seed in 0..seeds {
        let run = run_seed(seed);
        if !run.conforms() {
            diverged.push((seed, run.violations));
        }
    }
    assert!(diverged.is_empty(), "diverging seeds: {diverged:#?}");
}

/// Oracle self-test: inject an engine-side bug (the driver silently
/// discards the first dispatch), confirm the invariant suite catches it,
/// and confirm the shrinker reduces the repro to at most three jobs.
#[test]
fn injected_engine_bug_is_caught_and_shrunk() {
    let cfg = EngineDriverConfig { drop_nth_dispatch: Some(0), ..Default::default() };
    let scenario = Scenario::generate(0); // class 0: no chaos, no failures
    let run = run_scenario(&scenario, &[PathKind::Engine], &cfg);
    assert!(
        !run.conforms(),
        "mutated engine run must diverge, got a clean pass on {} jobs",
        scenario.total_jobs()
    );

    let repro = minimize(&run, &cfg);
    assert!(!repro.minimized_violations.is_empty(), "minimized scenario must still diverge");
    assert!(
        repro.minimized.total_jobs() <= 3,
        "repro not minimal ({} jobs):\n{}",
        repro.minimized.total_jobs(),
        repro.minimized.describe()
    );
    // The report must carry the replay handle.
    let report = repro.report();
    assert!(report.contains("replay"), "{report}");
}

/// Fault-class smoke: seeded worker crashes, spot revocations, heartbeat
/// stalls and master kill/restart must leave every path conforming —
/// lease expiry (realtime) or the timeout backstop (engine sim) requeues
/// whatever dies, and with unbounded retries everything completes.
/// `DEWE_FAULT_SEEDS` widens the sweep (CI runs 32+ via the binary).
#[test]
fn fault_class_smoke_zero_divergence() {
    let seeds: u64 =
        std::env::var("DEWE_FAULT_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let mut diverged = Vec::new();
    for seed in 0..seeds {
        let run = run_fault_seed(seed);
        if !run.conforms() {
            diverged.push((seed, run.violations));
        }
    }
    assert!(diverged.is_empty(), "diverging fault seeds: {diverged:#?}");
}

/// A chain with enough width to keep four workers busy for a while:
/// four independent 4-job chains (cpu 0.4s each), so the ensemble spans
/// ~1.6 virtual seconds and the faults below land mid-run.
fn two_worker_loss_scenario() -> Scenario {
    let chain = |_: usize| WorkflowSpec {
        family: DagFamily::Random,
        jobs: vec![
            JobSpec { cpu_secs: 0.4, parents: vec![] },
            JobSpec { cpu_secs: 0.4, parents: vec![0] },
            JobSpec { cpu_secs: 0.4, parents: vec![1] },
            JobSpec { cpu_secs: 0.4, parents: vec![2] },
        ],
    };
    Scenario {
        seed: 0,
        workflows: (0..4).map(chain).collect(),
        submission_interval_secs: 0.0,
        workers: 4,
        slots_per_worker: 1,
        shards: 1,
        parallel: false,
        max_attempts: None,
        backoff_base_secs: 0.0,
        chaos: ChaosSpec::none(),
        failures: Vec::new(),
        faults: FaultPlan {
            events: vec![
                TimedFault { at_secs: 0.6, event: FaultEvent::WorkerCrash { worker: 0 } },
                TimedFault {
                    at_secs: 1.0,
                    event: FaultEvent::SpotRevocation { worker: 1, notice_secs: 0.3 },
                },
                TimedFault {
                    at_secs: 1.4,
                    event: FaultEvent::MasterKill { restart_delay_secs: 0.3 },
                },
            ],
        },
        timer_backend: dewe_core::TimerBackend::default(),
        dispatch_batch: false,
    }
}

/// ISSUE acceptance: a scenario that kills 2 of 4 workers (one hard
/// crash, one spot revocation) and kills+restarts the master
/// mid-ensemble must complete with the invariant suite green on every
/// path — and deterministically so on the virtual-time paths.
#[test]
fn two_worker_loss_with_master_restart_completes_on_all_paths() {
    let scenario = two_worker_loss_scenario();
    let run = run_scenario(
        &scenario,
        &[PathKind::Engine, PathKind::Baseline, PathKind::Realtime, PathKind::Sim],
        &EngineDriverConfig::default(),
    );
    assert!(run.conforms(), "{:#?}", run.violations);

    // Determinism: the engine-path driver (faults, crash epochs, replay
    // recovery and all) is a pure function of the scenario.
    let cfg = EngineDriverConfig::default();
    let a = dewe_testkit::paths::engine::run(&scenario, &cfg);
    let b = dewe_testkit::paths::engine::run(&scenario, &cfg);
    assert_eq!(a.events, b.events, "engine fault run is not deterministic");
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.completed, b.completed);
    // The master kill fired, and the replayed engine matched bit-for-bit.
    assert_eq!(a.liveness_recovery, Some(true), "note: {:?}", a.note);
}

/// The mutation must also be visible differentially (not just via the
/// per-path suite): a clean second engine run disagrees with the mutated
/// one, so cross-path comparison alone flags it.
#[test]
fn mutation_diverges_from_clean_run() {
    let scenario = Scenario::generate(0);
    let clean = run_scenario(&scenario, &[PathKind::Engine], &EngineDriverConfig::default());
    let mutated = run_scenario(
        &scenario,
        &[PathKind::Engine],
        &EngineDriverConfig { drop_nth_dispatch: Some(0), ..Default::default() },
    );
    assert!(clean.conforms(), "{:?}", clean.violations);
    assert!(!mutated.conforms());
}

/// Fault+chaos smoke: the identical fault scenarios with lossy message
/// chaos overlaid — dispatches and acks go missing while workers crash
/// and the master restarts — must still converge on every path.
/// `DEWE_FAULT_CHAOS_SEEDS` widens the sweep (CI runs 32+ via the
/// binary).
#[test]
fn fault_chaos_class_smoke_zero_divergence() {
    let seeds: u64 =
        std::env::var("DEWE_FAULT_CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(6);
    let mut diverged = Vec::new();
    for seed in 0..seeds {
        let run = run_fault_chaos_seed(seed);
        if !run.conforms() {
            diverged.push((seed, run.violations));
        }
    }
    assert!(diverged.is_empty(), "diverging fault+chaos seeds: {diverged:#?}");
}

/// ISSUE acceptance: inject a sim-side bug (the observation layer drops
/// the first completion event), confirm the oracle flags it, and confirm
/// the shrinker reduces the repro to at most three jobs.
#[test]
fn injected_sim_bug_is_caught_and_shrunk() {
    let cfg = EngineDriverConfig { sim_drop_nth_completion: Some(0), ..Default::default() };
    let scenario = Scenario::generate(0); // class 0: no chaos, no failures
    let run = run_scenario(&scenario, &[PathKind::Sim], &cfg);
    assert!(
        !run.conforms(),
        "mutated sim run must diverge, got a clean pass on {} jobs",
        scenario.total_jobs()
    );

    let repro = minimize(&run, &cfg);
    assert!(!repro.minimized_violations.is_empty(), "minimized scenario must still diverge");
    assert!(
        repro.minimized.total_jobs() <= 3,
        "repro not minimal ({} jobs):\n{}",
        repro.minimized.total_jobs(),
        repro.minimized.describe()
    );
    assert!(repro.report().contains("replay"), "{}", repro.report());
}

/// The sim mutation must also be visible purely differentially: the sim
/// path's completion set disagrees with the clean engine path's, so the
/// cross-path comparison flags both.
#[test]
fn sim_mutation_diverges_from_engine_path() {
    let scenario = Scenario::generate(0);
    let cfg = EngineDriverConfig { sim_drop_nth_completion: Some(0), ..Default::default() };
    let run = run_scenario(&scenario, &[PathKind::Engine, PathKind::Sim], &cfg);
    assert!(!run.conforms());
    assert!(
        run.violations.iter().any(|v| v.starts_with("[cross]")),
        "expected a cross-path divergence: {:#?}",
        run.violations
    );
}

/// One representative seed per DAG family, run through the deterministic
/// paths: the family matrix must conform everywhere, not just for the
/// random shapes the classic classes lean on.
#[test]
fn every_dag_family_conforms_across_deterministic_paths() {
    use dewe_testkit::scenario::DagFamily;
    let mut pending: Vec<DagFamily> = DagFamily::ALL.to_vec();
    let mut checked = 0u32;
    for seed in 0..512u64 {
        let scenario = Scenario::generate(seed);
        let Some(pos) =
            pending.iter().position(|f| scenario.workflows.iter().any(|w| w.family == *f))
        else {
            continue;
        };
        pending.remove(pos);
        checked += 1;
        let run = run_scenario(
            &scenario,
            &[PathKind::Engine, PathKind::Baseline, PathKind::Sim],
            &EngineDriverConfig::default(),
        );
        assert!(
            run.conforms(),
            "seed {seed} ({:?}): {:#?}",
            scenario_families(&scenario),
            run.violations
        );
        if pending.is_empty() {
            break;
        }
    }
    assert!(pending.is_empty(), "families never sampled in 512 seeds: {pending:?}");
    assert_eq!(checked, DagFamily::ALL.len() as u32);
}

fn scenario_families(s: &Scenario) -> Vec<&'static str> {
    s.workflows.iter().map(|w| w.family.name()).collect()
}
