//! Differential smoke suite: seeded scenarios through all three
//! execution paths, plus the oracle's own mutation self-test.

use dewe_testkit::{minimize, run_scenario, run_seed, EngineDriverConfig, PathKind, Scenario};

/// Every seed in the smoke set must conform across engine, baseline, and
/// realtime. `DEWE_DIFF_SEEDS` widens the sweep (CI runs the release
/// binary for the big sweeps; this keeps the in-tree floor).
#[test]
fn differential_smoke_zero_divergence() {
    let seeds: u64 =
        std::env::var("DEWE_DIFF_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
    let mut diverged = Vec::new();
    for seed in 0..seeds {
        let run = run_seed(seed);
        if !run.conforms() {
            diverged.push((seed, run.violations));
        }
    }
    assert!(diverged.is_empty(), "diverging seeds: {diverged:#?}");
}

/// Oracle self-test: inject an engine-side bug (the driver silently
/// discards the first dispatch), confirm the invariant suite catches it,
/// and confirm the shrinker reduces the repro to at most three jobs.
#[test]
fn injected_engine_bug_is_caught_and_shrunk() {
    let cfg = EngineDriverConfig { drop_nth_dispatch: Some(0) };
    let scenario = Scenario::generate(0); // class 0: no chaos, no failures
    let run = run_scenario(&scenario, &[PathKind::Engine], &cfg);
    assert!(
        !run.conforms(),
        "mutated engine run must diverge, got a clean pass on {} jobs",
        scenario.total_jobs()
    );

    let repro = minimize(&run, &cfg);
    assert!(!repro.minimized_violations.is_empty(), "minimized scenario must still diverge");
    assert!(
        repro.minimized.total_jobs() <= 3,
        "repro not minimal ({} jobs):\n{}",
        repro.minimized.total_jobs(),
        repro.minimized.describe()
    );
    // The report must carry the replay handle.
    let report = repro.report();
    assert!(report.contains("replay"), "{report}");
}

/// The mutation must also be visible differentially (not just via the
/// per-path suite): a clean second engine run disagrees with the mutated
/// one, so cross-path comparison alone flags it.
#[test]
fn mutation_diverges_from_clean_run() {
    let scenario = Scenario::generate(0);
    let clean = run_scenario(&scenario, &[PathKind::Engine], &EngineDriverConfig::default());
    let mutated = run_scenario(
        &scenario,
        &[PathKind::Engine],
        &EngineDriverConfig { drop_nth_dispatch: Some(0) },
    );
    assert!(clean.conforms(), "{:?}", clean.violations);
    assert!(!mutated.conforms());
}
