//! Offline stand-in for the `parking_lot` API subset used by this
//! workspace: `Mutex`, `Condvar` (with `wait`/`wait_until`) and `RwLock`,
//! all without lock poisoning. Backed by `std::sync` — the container this
//! repository builds in has no crates-io access, so external dependencies
//! are vendored as minimal shims (see the workspace `[patch.crates-io]`).
//!
//! Semantics match parking_lot where the workspace relies on them:
//! guards release on drop, a poisoned std lock is transparently recovered
//! (parking_lot has no poisoning), and `Condvar::wait` takes `&mut guard`
//! rather than consuming it.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`Mutex`]. The `Option` indirection lets [`Condvar`]
/// temporarily take the underlying std guard during a wait and put it back,
/// which is how parking_lot's `wait(&mut guard)` signature is emulated.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside of a wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside of a wait")
    }
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Block until notified. Spurious wakeups are possible, as with any
    /// condvar; callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(res.timed_out());
    }
}
