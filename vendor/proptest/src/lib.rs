//! Offline stand-in for the `proptest` API subset used by this workspace.
//!
//! The container this repository builds in has no crates-io access, so
//! external dependencies are vendored as minimal shims (see the workspace
//! `[patch.crates-io]`). This shim keeps proptest's surface — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range/tuple/`Just`
//! strategies, `prop::collection::vec`, `prop::bool::ANY`, `prop_oneof!`
//! and the `prop_assert*` family — but replaces the engine with plain
//! deterministic random testing:
//!
//! - every test function runs `ProptestConfig::cases` cases (default 64)
//!   with seeds derived deterministically from the case index, so failures
//!   reproduce across runs and machines;
//! - there is **no shrinking**: a failing case reports its inputs via the
//!   `Debug` bound on generated values and its case number, which is enough
//!   to re-run it under a debugger given determinism.

use std::fmt;

/// Deterministic per-case RNG (SplitMix64 stream).
pub mod test_runner {
    use std::fmt;

    /// Random source handed to strategies. One instance per test case, with
    /// a seed derived from the case index so runs are reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th execution of a property.
        pub fn for_case(case: u64) -> Self {
            // Fixed golden-ratio offset keeps neighbouring cases decorrelated.
            Self { state: case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03 }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[lo, hi)`.
        pub fn next_usize(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            let span = (hi - lo) as u64;
            lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64) as usize
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Strategies: how to generate random values of a type.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no `ValueTree`/shrinking layer:
    /// `new_value` draws directly from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chain: generate a value, then generate from the strategy it maps
        /// to (upstream `prop_flat_map`).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        /// The alternatives to choose between.
        pub options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            assert!(!self.options.is_empty(), "prop_oneof! needs at least one alternative");
            let idx = rng.next_usize(0, self.options.len());
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start + hi as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    (self.start as i128 + hi as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only: the workspace uses any::<f64> nowhere it
            // wants NaN/infinities.
            rng.next_f64() * 2e9 - 1e9
        }
    }

    /// Strategy produced by [`any`](crate::any).
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Unconstrained values of `T` (requires [`strategy::Arbitrary`]).
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for collection strategies: a fixed size or a
    /// half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.next_usize(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform true/false.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-property configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the full workspace test suite
        // fast while still exercising diverse inputs. Properties that want
        // more set it explicitly via proptest_config.
        Self { cases: 64 }
    }
}

impl fmt::Display for ProptestConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProptestConfig(cases={})", self.cases)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Define property tests. Supported grammar (the subset this workspace
/// uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]  // optional
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u64>(), 1..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let __proptest_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __proptest_result {
                        panic!("property {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Uniformly choose among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![
                $(::std::boxed::Box::new($strategy) as $crate::strategy::BoxedStrategy<_>,)+
            ],
        }
    };
}

/// Assert a condition inside a property; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u32..50, f in 0.25f64..0.75) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u64>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(prop::bool::ANY, 10)) {
            prop_assert_eq!(v.len(), 10);
        }

        #[test]
        fn tuples_and_map(pair in (0u8..10, 0u8..10).prop_map(|(a, b)| (a, a as u16 + b as u16))) {
            prop_assert!(pair.1 >= pair.0 as u16);
        }

        #[test]
        fn oneof_covers_alternatives(v in prop::collection::vec(
            prop_oneof![Just(0u8), Just(1u8), 2u8..4], 64)
        ) {
            prop_assert!(v.iter().all(|&x| x < 4u8));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honored(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn determinism_across_invocations() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::for_case(3);
            crate::strategy::Strategy::new_value(&(0u64..1_000_000), &mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
