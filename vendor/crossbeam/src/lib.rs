//! Offline stand-in for the `crossbeam` API subset used by this workspace
//! (`channel::{unbounded, Sender, Receiver}`), backed by `std::sync::mpsc`.
//! The container this repository builds in has no crates-io access, so
//! external dependencies are vendored as minimal shims (see the workspace
//! `[patch.crates-io]`).

/// Multi-producer channels. `std::sync::mpsc`'s `Sender`/`Receiver` carry
/// the exact method surface the workspace relies on (`send`,
/// `recv_timeout`, `recv`, `try_recv`), so they are re-exported directly.
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_and_recv_timeout() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
    }

    #[test]
    fn senders_clone() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap()).join().unwrap();
        tx.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
