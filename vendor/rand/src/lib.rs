//! Offline stand-in for the `rand` 0.8 API subset used by this workspace:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer/float ranges, and `Rng::gen_bool`. The container this repository
//! builds in has no crates-io access, so external dependencies are vendored
//! as minimal shims (see the workspace `[patch.crates-io]`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed and statistically strong enough for the workload generators and
//! scheduling policies that consume it. The exact stream differs from
//! upstream `rand`'s StdRng (ChaCha12); nothing in this workspace depends
//! on upstream's stream, only on per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Object-safe raw-word generator; [`Rng`] layers the generic helpers on
/// top of it.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is at most
                // 2^-64 per draw, irrelevant for workload synthesis.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                start + (end - start) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen_range(0u64..1000)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
            let g = r.gen_range(0.9f64..=1.1);
            assert!((0.9..=1.1).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn float_samples_cover_the_range() {
        let mut r = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..1000).map(|_| r.gen_range(0.0f64..1.0)).collect();
        assert!(samples.iter().any(|&x| x < 0.1));
        assert!(samples.iter().any(|&x| x > 0.9));
    }
}
