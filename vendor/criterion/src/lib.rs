//! Offline stand-in for the `criterion` API subset used by this
//! workspace's benches. The container this repository builds in has no
//! crates-io access, so external dependencies are vendored as minimal
//! shims (see the workspace `[patch.crates-io]`).
//!
//! Measurement model: each bench is warmed up for ~300 ms to estimate its
//! per-iteration cost, then measured in `sample_size` samples sized to fit
//! a ~2 s budget. The median sample is reported as ns/iteration together
//! with throughput when configured. This is cruder than criterion's
//! bootstrap analysis but produces honest, stable wall-clock numbers —
//! sufficient for the before/after deltas tracked in `BENCH_hotpath.json`.
//!
//! CLI compatibility: a positional argument filters benchmarks by
//! substring; `--test` (passed by `cargo test --benches`) runs each bench
//! exactly once; other flags cargo/criterion pass (`--bench`, `--color`,
//! ...) are accepted and ignored.

use std::time::{Duration, Instant};

/// Work-per-iteration declaration, used to derive throughput rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine invocation regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: thousands per sample under real criterion.
    SmallInput,
    /// Large inputs: few per sample.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver. Collects CLI behaviour (filter / test mode) once and
/// hands out groups.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {} // accept and ignore cargo/criterion flags
                s => filter = Some(s.to_string()),
            }
        }
        Self { filter, test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Finalize (kept for API compatibility; reports print eagerly).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of measurement samples (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE_BUDGET: Duration = Duration::from_secs(2);

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.samples_ns = vec![0.0];
            return;
        }
        // Warmup: estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = MEASURE_BUDGET.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter).floor() as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples_ns.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            self.samples_ns = vec![0.0];
            return;
        }
        // Warmup: estimate routine cost alone.
        let mut warm_spent = Duration::ZERO;
        let mut warm_iters = 0u64;
        while warm_spent < WARMUP {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            warm_spent += start.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters as f64;
        let budget = MEASURE_BUDGET.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter).floor() as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut sample = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                sample += start.elapsed();
            }
            self.samples_ns.push(sample.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{id:<44} (not measured)");
            return;
        }
        if self.test_mode {
            println!("{id:<44} ok (test mode)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!("  thrpt: {:>12}/s", si(n as f64 / (median / 1e9))),
            Throughput::Bytes(n) => format!("  thrpt: {:>11}B/s", si(n as f64 / (median / 1e9))),
        });
        println!(
            "{id:<44} time: [{} {} {}]{}",
            ns(lo),
            ns(median),
            ns(hi),
            rate.unwrap_or_default()
        );
    }
}

fn ns(v: f64) -> String {
    if v < 1e3 {
        format!("{v:.2} ns")
    } else if v < 1e6 {
        format!("{:.3} µs", v / 1e3)
    } else if v < 1e9 {
        format!("{:.3} ms", v / 1e6)
    } else {
        format!("{:.3} s", v / 1e9)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declare a set of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("zzz".into()), test_mode: true };
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| ());
            ran = true;
        });
        g.finish();
        assert!(!ran);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ns(12.0), "12.00 ns");
        assert_eq!(ns(1500.0), "1.500 µs");
        assert!(si(2.5e6).starts_with("2.500M"));
    }
}
