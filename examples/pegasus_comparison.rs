//! Scheduling vs pulling, head to head (paper §V.A.1, Figs. 6–7).
//!
//! Runs the same Montage ensemble through DEWE v2's pull-based runtime and
//! through the Pegasus-like scheduling baseline on an identical simulated
//! c3.8xlarge node, then prints the comparison the paper's evaluation
//! makes: makespan, total CPU time and total disk writes.
//!
//! ```text
//! cargo run --release --example pegasus_comparison
//! ```

use std::sync::Arc;

use dewe::baseline::{run_ensemble as run_pegasus, BaselineConfig};
use dewe::core::sim::{run_ensemble as run_dewe, SimRunConfig};
use dewe::montage::MontageConfig;
use dewe::simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

fn main() {
    let degree = 3.0; // ~2,200 jobs per workflow; fast but non-trivial
    let template = Arc::new(MontageConfig::degree(degree).build());
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };
    println!("{} jobs per workflow; single c3.8xlarge (32 vCPU)\n", template.job_count());
    println!(
        "{:>3}  {:>22}  {:>24}  {:>22}",
        "W", "makespan (s)", "total CPU (core-s)", "disk writes (GB)"
    );
    println!(
        "{:>3}  {:>10} {:>11}  {:>11} {:>12}  {:>10} {:>11}",
        "", "DEWE v2", "Pegasus-like", "DEWE v2", "Pegasus-like", "DEWE v2", "Pegasus-like"
    );
    for w in 1..=5 {
        let wfs: Vec<_> = (0..w).map(|_| Arc::clone(&template)).collect();
        let d = run_dewe(&wfs, &SimRunConfig::new(cluster));
        let p = run_pegasus(&wfs, &BaselineConfig::new(cluster));
        assert!(d.completed && p.completed);
        println!(
            "{w:>3}  {:>10.0} {:>11.0}  {:>11.0} {:>12.0}  {:>10.1} {:>11.1}",
            d.makespan_secs,
            p.makespan_secs,
            d.total_cpu_core_secs,
            p.total_cpu_core_secs,
            d.total_bytes_written / 1e9,
            p.total_bytes_written / 1e9,
        );
        if w == 5 {
            println!(
                "\nat W=5 the pulling approach is {:.0}% faster (paper reports 80% on EC2)",
                100.0 * (1.0 - d.makespan_secs / p.makespan_secs)
            );
        }
    }
}
