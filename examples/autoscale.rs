//! Dynamic provisioning (paper §V.A.3's future-work sketch, implemented).
//!
//! Runs a Montage ensemble under a reactive autoscaler that rents nodes
//! when the dispatch queue backs up and retires them when it drains
//! (e.g. during the blocking mConcatFit/mBgModel stage), then compares the
//! bill against a static fleet under hourly and per-minute pricing.
//!
//! ```text
//! cargo run --release --example autoscale
//! ```

use std::sync::Arc;

use dewe::core::sim::autoscale::{run_ensemble_autoscale, AutoscalePolicy};
use dewe::core::sim::{run_ensemble, SimRunConfig};
use dewe::montage::MontageConfig;
use dewe::simcloud::{ClusterConfig, SharedFsKind, StorageConfig, C3_8XLARGE};

fn main() {
    let degree = 3.0;
    let workflows = 4;
    let max_nodes = 6;
    let template = Arc::new(MontageConfig::degree(degree).build());
    let wfs: Vec<_> = (0..workflows).map(|_| Arc::clone(&template)).collect();
    let cluster = ClusterConfig {
        instance: C3_8XLARGE,
        nodes: max_nodes,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    };
    println!(
        "{workflows} x {degree}-degree Montage ({} jobs each); fleet ceiling {max_nodes} x c3.8xlarge\n",
        template.job_count()
    );

    // Static fleet for comparison.
    let fixed = run_ensemble(&wfs, &SimRunConfig::new(cluster));
    println!(
        "static fleet   : {max_nodes} nodes for {:>5.0}s = {:>7.0} node-s, ${:.2} hourly",
        fixed.makespan_secs,
        max_nodes as f64 * fixed.makespan_secs,
        fixed.cost_usd
    );

    let policy = AutoscalePolicy {
        min_nodes: 1,
        initial_nodes: 1,
        evaluate_interval_secs: 5.0,
        scale_out_queue_factor: 1.0,
        scale_in_queue_factor: 0.25,
    };
    let auto = run_ensemble_autoscale(&wfs, &SimRunConfig::new(cluster), &policy);
    assert!(auto.completed);
    println!(
        "autoscaled     : peak {} nodes, {:>5.0}s = {:>7.0} node-s, ${:.2} hourly / ${:.2} per-minute",
        auto.peak_nodes, auto.makespan_secs, auto.node_seconds, auto.cost_hourly, auto.cost_per_minute
    );
    println!("\nscaling trace (time s -> active nodes):");
    for (t, n) in &auto.scaling_trace {
        println!("  {t:>7.0}s -> {n}");
    }
    println!(
        "\nunder per-minute billing the autoscaler saves {:.0}% of the static bill;",
        100.0 * (1.0 - auto.cost_per_minute / (fixed.cost_usd.max(1e-9))),
    );
    println!("under 2015-AWS hourly billing the saving is largely erased — the paper's point.");
}
