//! The canonical workflow gallery under one engine.
//!
//! Runs all five generator shapes (Montage, LIGO, CyberShake, Epigenomics,
//! SIPHT) through the DEWE v2 simulated runtime on the same node and
//! prints a structural + behavioural comparison: how homogeneity, depth
//! and I/O character translate into makespan, queue waits and cache
//! behaviour. Montage's profile is why the paper's pulling argument works;
//! the others show where its premises weaken (SIPHT's low homogeneity,
//! Epigenomics' empty queues).
//!
//! ```text
//! cargo run --release --example workflow_gallery
//! ```

use std::sync::Arc;

use dewe::core::sim::{run_ensemble, SimRunConfig};
use dewe::dag::{LevelProfile, Workflow, WorkflowStats};
use dewe::montage::{CyberShakeConfig, EpigenomicsConfig, LigoConfig, MontageConfig, SiphtConfig};
use dewe::simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

fn main() {
    let gallery: Vec<(&str, Arc<Workflow>)> = vec![
        ("montage", Arc::new(MontageConfig::degree(2.0).build())),
        ("ligo", Arc::new(LigoConfig::new(8, 12).build())),
        ("cybershake", Arc::new(CyberShakeConfig::new(400).build())),
        ("epigenomics", Arc::new(EpigenomicsConfig::new(4, 24).build())),
        ("sipht", Arc::new(SiphtConfig::new(30).build())),
    ];
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };

    println!(
        "{:<12} {:>6} {:>6} {:>7} {:>8} {:>9} {:>9} {:>9} {:>8}",
        "workflow",
        "jobs",
        "depth",
        "width",
        "homog3",
        "makespan",
        "q-wait50",
        "q-wait99",
        "cachehit"
    );
    for (name, wf) in &gallery {
        let stats = WorkflowStats::of(wf);
        let lp = LevelProfile::of(wf);
        let mut cfg = SimRunConfig::new(cluster);
        cfg.record_trace = true;
        let report = run_ensemble(&[Arc::clone(wf)], &cfg);
        assert!(report.completed);
        let trace = report.trace.expect("trace requested");
        let qw = trace.queue_wait_summary().expect("jobs ran");
        println!(
            "{:<12} {:>6} {:>6} {:>7} {:>7.0}% {:>8.0}s {:>8.1}s {:>8.1}s {:>7.0}%",
            name,
            stats.total_jobs,
            lp.depth(),
            lp.max_width(),
            100.0 * stats.homogeneity(3),
            report.makespan_secs,
            qw.p50,
            qw.p99,
            100.0 * report.cache_hit_rate,
        );
    }
    println!(
        "\nMontage/CyberShake: wide homogeneous fans queue deeply (pulling shines).\n\
         Epigenomics: deep pipelines, near-empty queues (latency-bound).\n\
         SIPHT: heterogeneous jobs, thin per-transformation statistics\n\
         (the stress case for profiling-based provisioning)."
    );
}
