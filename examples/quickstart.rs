//! Quickstart: run a real workflow ensemble with the DEWE v2 threaded
//! runtime.
//!
//! Builds two small Montage workflows, starts a master daemon and two
//! worker daemons wired through the in-process message queue, submits the
//! workflows, and waits for completion. Jobs "execute" by sleeping 1 ms
//! per CPU-second of their profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use dewe::core::realtime::{
    spawn_master, spawn_worker, submit, MasterConfig, MasterEvent, MessageBus, Registry,
    SleepRunner, WorkerConfig,
};
use dewe::montage::MontageConfig;

fn main() {
    // 1. Generate the scientific workflows (0.5-degree Montage mosaics:
    //    same DAG shape as the paper's 6.0-degree runs, 47 jobs each).
    let wf_a = Arc::new(MontageConfig::degree(0.5).with_name("m16").build());
    let wf_b = Arc::new(MontageConfig::degree(0.5).with_name("m17").with_seed(7).build());
    println!("workflow m16: {} jobs, {} files", wf_a.job_count(), wf_a.file_count());
    println!("workflow m17: {} jobs, {} files", wf_b.job_count(), wf_b.file_count());

    // 2. Bring up the system: message bus (the RabbitMQ of the paper), a
    //    master daemon, and two 8-slot worker daemons.
    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(
        bus.clone(),
        registry.clone(),
        MasterConfig::builder().expected_workflows(2).build(),
    );
    let runner = Arc::new(SleepRunner::new(0.001)); // 1 ms per CPU-second
    let workers: Vec<_> = (0..2)
        .map(|id| {
            spawn_worker(
                bus.clone(),
                registry.clone(),
                runner.clone(),
                WorkerConfig { worker_id: id, slots: 8, ..WorkerConfig::default() },
            )
        })
        .collect();

    // 3. Submit the ensemble — from anywhere, at any time (paper §III.E).
    submit(&bus, "m16", wf_a);
    submit(&bus, "m17", wf_b);

    // 4. Watch progress.
    loop {
        match master.events.recv_timeout(Duration::from_secs(60)) {
            Ok(MasterEvent::WorkflowCompleted { workflow, makespan_secs }) => {
                println!("workflow {workflow:?} completed in {makespan_secs:.2}s");
            }
            Ok(MasterEvent::AllCompleted { stats }) => {
                println!(
                    "ensemble complete: {} jobs, {} dispatches, {} resubmissions",
                    stats.jobs_completed, stats.dispatches, stats.resubmissions
                );
                break;
            }
            Ok(other) => panic!("unexpected event: {other:?}"),
            Err(e) => panic!("master stalled: {e}"),
        }
    }

    // 5. Tear down.
    let stats = master.join();
    let executed: u64 = workers.into_iter().map(|w| w.stop()).sum();
    println!("workers executed {executed} jobs; engine recorded {}", stats.jobs_completed);
    assert_eq!(executed, stats.jobs_completed);
}
