//! Provision-then-execute: the paper's end-to-end story on the simulated
//! cloud.
//!
//! 1. Profile a Montage workflow on small clusters of each instance type
//!    (the paper's §IV.A campaign).
//! 2. Derive each type's converged node performance index and size a
//!    cluster for a 50-workflow ensemble under a deadline (Eq. 2).
//! 3. Execute the ensemble on the recommended cluster and check the
//!    deadline and cost predictions.
//!
//! ```text
//! cargo run --release --example montage_ensemble
//! ```

use std::sync::Arc;

use dewe::core::sim::{run_ensemble, SimRunConfig};
use dewe::montage::MontageConfig;
use dewe::provision::{recommend, ProfileConfig, Profiler};
use dewe::simcloud::{
    ClusterConfig, InstanceType, SharedFsKind, StorageConfig, C3_8XLARGE, I2_8XLARGE, R3_8XLARGE,
};

fn main() {
    // Keep the example fast: 2-degree mosaics (~1,000 jobs each).
    let degree = 2.0;
    let workflows = 50;
    let deadline_secs = 600.0;
    let template = Arc::new(MontageConfig::degree(degree).build());
    println!(
        "workload: {workflows} x {degree}-degree Montage ({} jobs each), deadline {deadline_secs} s",
        template.job_count()
    );

    // 1-2. Profile each type and derive its converged index.
    let config = ProfileConfig {
        single_node_max_workflows: 4,
        multi_node_workflows: 8,
        multi_node_range: (2, 5),
        shared_fs: SharedFsKind::Nfs,
        per_job_overhead_secs: 0.1,
    };
    let types: [&'static InstanceType; 3] = [&C3_8XLARGE, &R3_8XLARGE, &I2_8XLARGE];
    let mut indexed = Vec::new();
    for t in types {
        let profile = Profiler::new(Arc::clone(&template), config.clone()).profile(t);
        println!("{:<12} converged node performance index {:.5}", t.name, profile.converged_index);
        indexed.push((t, profile.converged_index));
    }

    // 3. Recommend, cheapest-first.
    let plans = recommend(&indexed, workflows, deadline_secs);
    println!("\nrecommendations (cheapest first):");
    for p in &plans {
        println!(
            "  {:<12} x{:<3} predicted {:>5.0}s  ${:>7.2} total  (${:.3}/workflow)",
            p.instance, p.nodes, p.predicted_secs, p.predicted_cost, p.price_per_workflow
        );
    }
    let best = &plans[0];

    // 4. Execute on the winning design with a distributed FS (as the
    //    paper's large-scale runs do).
    let itype = *types.iter().find(|t| t.name == best.instance).expect("known type");
    let cluster = ClusterConfig {
        instance: *itype,
        nodes: best.nodes,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    };
    let wfs: Vec<_> = (0..workflows).map(|_| Arc::clone(&template)).collect();
    let report = run_ensemble(&wfs, &SimRunConfig::new(cluster));
    assert!(report.completed);
    println!(
        "\nexecuted on {} x{}: makespan {:.0}s (deadline {deadline_secs}s), cost ${:.2}",
        best.instance, best.nodes, report.makespan_secs, report.cost_usd
    );
    if report.makespan_secs <= deadline_secs {
        println!("deadline met — the profiling-based design holds.");
    } else {
        println!(
            "deadline exceeded by {:.0}s — profiling indexes were optimistic for this workload mix.",
            report.makespan_secs - deadline_secs
        );
    }
}
