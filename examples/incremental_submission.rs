//! Incremental submission (paper §V.A.2, Fig. 8): shape the ensemble's
//! resource demand by staggering workflow submissions.
//!
//! Sweeps the submission interval for a five-workflow Montage ensemble on
//! one simulated c3.8xlarge node and prints the makespan curve, then lets
//! the auto-tuner refine the optimum.
//!
//! ```text
//! cargo run --release --example incremental_submission
//! ```

use std::sync::Arc;

use dewe::core::sim::{run_ensemble, SimRunConfig, SubmissionPlan};
use dewe::montage::MontageConfig;
use dewe::simcloud::{ClusterConfig, StorageConfig, C3_8XLARGE};

fn main() {
    let degree = 3.0;
    let workflows = 5;
    let template = Arc::new(MontageConfig::degree(degree).build());
    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };
    println!(
        "{workflows} x {degree}-degree Montage ({} jobs each) on one c3.8xlarge\n",
        template.job_count()
    );

    let measure = |interval: f64| -> f64 {
        let wfs: Vec<_> = (0..workflows).map(|_| Arc::clone(&template)).collect();
        let mut cfg = SimRunConfig::new(cluster);
        cfg.submission = if interval == 0.0 {
            SubmissionPlan::Batch
        } else {
            SubmissionPlan::Interval(interval)
        };
        let report = run_ensemble(&wfs, &cfg);
        assert!(report.completed);
        report.makespan_secs
    };

    let batch = measure(0.0);
    println!("interval   0s (batch): {batch:>6.0}s");
    let mut best = (0.0, batch);
    for interval in [15.0, 30.0, 45.0, 60.0, 75.0, 90.0] {
        let t = measure(interval);
        let marker = if t < best.1 { " <-- best so far" } else { "" };
        println!("interval {interval:>3.0}s        : {t:>6.0}s{marker}");
        if t < best.1 {
            best = (interval, t);
        }
    }
    println!(
        "\nbest interval {:.0}s is {:.1}% faster than batch submission",
        best.0,
        100.0 * (1.0 - best.1 / batch)
    );
    println!("(the paper reports 34% at a 100 s interval for 6.0-degree workflows)");
}
