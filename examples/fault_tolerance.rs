//! Fault tolerance with real threads: kill a worker daemon mid-run and
//! watch the timeout mechanism recover (paper §III.B / §V.A.3).
//!
//! Two worker daemons execute a fan-out workflow whose jobs sleep for real
//! time. One worker is killed while jobs are in flight — its jobs vanish
//! without acknowledgment — and a replacement daemon starts a little
//! later. The master's timeout scan resubmits the lost jobs and the
//! ensemble still completes, with the engine reporting the resubmissions.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use std::sync::Arc;
use std::time::Duration;

use dewe::core::realtime::{
    spawn_master, spawn_worker, submit, MasterConfig, MasterEvent, MessageBus, Registry,
    SleepRunner, WorkerConfig,
};
use dewe::dag::WorkflowBuilder;

fn main() {
    // 60 independent jobs of ~100 ms each.
    let mut b = WorkflowBuilder::new("fanout");
    for i in 0..60 {
        b.job(format!("job{i}"), "work", 100.0).build();
    }
    let wf = Arc::new(b.finish().expect("valid DAG"));

    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(
        bus.clone(),
        registry.clone(),
        MasterConfig::builder()
            .default_timeout_secs(1.0) // aggressive, to keep the demo short
            .timeout_scan_interval(Duration::from_millis(25))
            .expected_workflows(1)
            .build(),
    );
    let runner = Arc::new(SleepRunner::new(0.001)); // 100 cpu-sec -> 100 ms

    let w1 = spawn_worker(
        bus.clone(),
        registry.clone(),
        runner.clone(),
        WorkerConfig { worker_id: 1, slots: 4, ..WorkerConfig::default() },
    );
    let w2 = spawn_worker(
        bus.clone(),
        registry.clone(),
        runner.clone(),
        WorkerConfig { worker_id: 2, slots: 4, ..WorkerConfig::default() },
    );

    submit(&bus, "fanout", wf);

    // Let the cluster get busy, then kill worker 2 abruptly.
    std::thread::sleep(Duration::from_millis(300));
    let done_before_kill = w2.kill();
    println!("killed worker 2 after it completed {done_before_kill} jobs (in-flight jobs lost)");

    // A replacement daemon joins a moment later — the stateless design
    // means it needs nothing but the queue address.
    std::thread::sleep(Duration::from_millis(200));
    let w3 = spawn_worker(
        bus.clone(),
        registry,
        runner,
        WorkerConfig { worker_id: 3, slots: 4, ..WorkerConfig::default() },
    );
    println!("worker 3 started");

    loop {
        match master.events.recv_timeout(Duration::from_secs(60)) {
            Ok(MasterEvent::WorkflowCompleted { makespan_secs, .. }) => {
                println!("workflow completed in {makespan_secs:.2}s despite the failure");
            }
            Ok(MasterEvent::AllCompleted { stats }) => {
                println!(
                    "engine: {} jobs completed, {} resubmissions, {} duplicate completions",
                    stats.jobs_completed, stats.resubmissions, stats.duplicate_completions
                );
                assert_eq!(stats.jobs_completed, 60);
                break;
            }
            Ok(other) => panic!("unexpected event: {other:?}"),
            Err(e) => panic!("master stalled: {e}"),
        }
    }
    master.join();
    w1.stop();
    w3.stop();
    println!("done.");
}
