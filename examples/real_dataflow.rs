//! End-to-end data-flow verification with real files.
//!
//! Runs a Montage workflow through the threaded runtime with the
//! [`FsRunner`]: every job *actually reads* its input files from a
//! workspace directory and *actually writes* its outputs (sizes scaled
//! down ~10^6x). If the master ever dispatched a job before its parents
//! completed, the job would fail on a missing input — so a clean run is a
//! physical proof of the precedence machinery, the in-process analogue of
//! the paper's MD5 check on the final mosaic.
//!
//! ```text
//! cargo run --release --example real_dataflow
//! ```

use std::sync::Arc;
use std::time::Duration;

use dewe::core::realtime::{
    spawn_master, spawn_worker, submit, FsRunner, MasterConfig, MasterEvent, MessageBus, Registry,
    WorkerConfig,
};
use dewe::montage::MontageConfig;

fn main() {
    let wf = Arc::new(MontageConfig::degree(1.0).with_name("mosaic").build());
    println!("{} jobs, {} files", wf.job_count(), wf.file_count());

    let workspace = std::env::temp_dir().join(format!("dewe_dataflow_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&workspace);
    let runner = FsRunner::new(&workspace, 1e-6);
    runner.stage_inputs(&wf).expect("stage initial inputs");
    println!("staged inputs under {}", workspace.display());

    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(
        bus.clone(),
        registry.clone(),
        MasterConfig::builder().expected_workflows(1).build(),
    );
    let workers: Vec<_> = (0..4)
        .map(|id| {
            spawn_worker(
                bus.clone(),
                registry.clone(),
                Arc::new(runner.clone()),
                WorkerConfig { worker_id: id, slots: 4, ..WorkerConfig::default() },
            )
        })
        .collect();

    submit(&bus, "mosaic", Arc::clone(&wf));

    loop {
        match master.events.recv_timeout(Duration::from_secs(120)) {
            Ok(MasterEvent::WorkflowCompleted { makespan_secs, .. }) => {
                println!("workflow completed in {makespan_secs:.2}s wall time");
            }
            Ok(MasterEvent::AllCompleted { stats }) => {
                assert_eq!(stats.jobs_completed as usize, wf.job_count());
                println!("all {} jobs completed, 0 failures", stats.jobs_completed);
                break;
            }
            Ok(other) => panic!("unexpected event: {other:?}"),
            Err(e) => panic!("master stalled: {e}"),
        }
    }
    master.join();
    for w in workers {
        w.stop();
    }

    // The final mosaic JPEG must exist with the expected (scaled) size —
    // the paper verifies the same via file size + MD5 of mJpeg's output.
    let jpeg = workspace.join("mosaic/mosaic.jpg");
    let meta = std::fs::metadata(&jpeg).expect("final mosaic exists");
    println!("final output {} ({} bytes) verified", jpeg.display(), meta.len());
    let _ = std::fs::remove_dir_all(&workspace);
}
