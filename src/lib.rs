//! # dewe
//!
//! A from-scratch Rust reproduction of **DEWE v2**, the pulling-based
//! scientific-workflow-ensemble execution system of *Executing Large Scale
//! Scientific Workflow Ensembles in Public Clouds* (Jiang, Lee & Zomaya,
//! ICPP 2015), together with every substrate the paper depends on:
//!
//! * [`dag`] — workflow DAG model, dependency tracking, DAGMan-style text
//!   format;
//! * [`montage`] — calibrated Montage / LIGO / CyberShake workflow
//!   generators;
//! * [`mq`] — the in-memory topic broker (RabbitMQ substitute);
//! * [`simcloud`] — a deterministic discrete-event EC2 simulator (instance
//!   catalog, fair-share disks, page-cache model, NFS/MooseFS models,
//!   hourly billing);
//! * [`core`] — DEWE v2 itself: the sans-IO ensemble engine plus threaded
//!   (*realtime*) and simulated runtimes;
//! * [`baseline`] — the Pegasus + DAGMan + Condor-like scheduling engine
//!   the paper compares against;
//! * [`provision`] — profiling-based resource provisioning (node
//!   performance index, Eq. 1–2, cost/deadline planning);
//! * [`metrics`] — mpstat/iostat-style sampling, aggregation and export.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record. The `dewe-bench`
//! crate regenerates every table and figure of the paper's evaluation.
//!
//! ## Two ways to run an ensemble
//!
//! **Real threads** (the library as a workflow engine):
//!
//! ```
//! use dewe::core::realtime::{spawn_master, spawn_worker, submit, MasterConfig,
//!     MessageBus, NoopRunner, Registry, WorkerConfig};
//! use dewe::montage::MontageConfig;
//! use std::sync::Arc;
//!
//! let bus = MessageBus::new();
//! let registry = Registry::new();
//! let master = spawn_master(bus.clone(), registry.clone(),
//!     MasterConfig::builder().expected_workflows(1).build());
//! let worker = spawn_worker(bus.clone(), registry, Arc::new(NoopRunner),
//!     WorkerConfig::default());
//! submit(&bus, "demo", Arc::new(MontageConfig::degree(0.5).build()));
//! let stats = master.join();
//! assert_eq!(stats.jobs_completed, 45);
//! worker.stop();
//! ```
//!
//! **Simulated cluster** (the paper's 1,000-core experiments on a laptop):
//!
//! ```
//! use dewe::core::sim::{run_ensemble, SimRunConfig};
//! use dewe::montage::MontageConfig;
//! use dewe::simcloud::{ClusterConfig, SharedFsKind, StorageConfig, C3_8XLARGE};
//! use std::sync::Arc;
//!
//! let wf = Arc::new(MontageConfig::degree(1.0).build());
//! let cluster = ClusterConfig {
//!     instance: C3_8XLARGE,
//!     nodes: 2,
//!     storage: StorageConfig::Shared(SharedFsKind::Nfs),
//! };
//! let report = run_ensemble(&[wf], &SimRunConfig::new(cluster));
//! assert!(report.completed);
//! ```

pub mod manifest;

pub use dewe_baseline as baseline;
pub use dewe_core as core;
pub use dewe_dag as dag;
pub use dewe_metrics as metrics;
pub use dewe_montage as montage;
pub use dewe_mq as mq;
pub use dewe_provision as provision;
pub use dewe_simcloud as simcloud;
