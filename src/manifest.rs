//! Ensemble manifests: declarative descriptions of a whole campaign.
//!
//! A manifest names the workflows of an ensemble (files on disk, in either
//! supported format), their multiplicities, the submission plan and the
//! cluster to run on — everything the paper's experiments vary:
//!
//! ```text
//! # 20 mosaics and 2 LIGO analyses, staggered, on 4 r3.8xlarge nodes
//! WORKFLOW mosaics.dag   COUNT 20
//! WORKFLOW inspiral.dax  COUNT 2
//! INTERVAL 50
//! NODES    4
//! TYPE     r3.8xlarge
//! TIMEOUT  600
//! ```
//!
//! `dewectl ensemble <manifest>` executes one on the simulated cloud.
//! Workflow paths are resolved relative to the manifest's directory.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dewe_dag::Workflow;
use dewe_simcloud::InstanceType;

/// A parsed ensemble manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// (workflow path, multiplicity) in declaration order.
    pub workflows: Vec<(PathBuf, usize)>,
    /// Submission interval in seconds (0 = batch).
    pub interval_secs: f64,
    /// Cluster node count.
    pub nodes: usize,
    /// Instance type name.
    pub instance: String,
    /// Job timeout override in seconds (None = engine default).
    pub timeout_secs: Option<f64>,
}

impl Manifest {
    /// Parse manifest text. `base` resolves relative workflow paths.
    pub fn parse(text: &str, base: &Path) -> Result<Manifest, String> {
        let mut workflows = Vec::new();
        let mut interval_secs = 0.0;
        let mut nodes = 1usize;
        let mut instance = "c3.8xlarge".to_string();
        let mut timeout_secs = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            let err = |m: &str| format!("manifest line {}: {m}", lineno + 1);
            match toks[0].to_ascii_uppercase().as_str() {
                "WORKFLOW" => {
                    let path = toks.get(1).ok_or_else(|| err("WORKFLOW <path> [COUNT n]"))?;
                    let count = match toks.get(2) {
                        None => 1,
                        Some(t) if t.eq_ignore_ascii_case("COUNT") => toks
                            .get(3)
                            .and_then(|v| v.parse().ok())
                            .filter(|&c| c > 0)
                            .ok_or_else(|| err("COUNT needs a positive integer"))?,
                        Some(t) => return Err(err(&format!("unexpected token `{t}`"))),
                    };
                    workflows.push((base.join(path), count));
                }
                "INTERVAL" => {
                    interval_secs = toks
                        .get(1)
                        .and_then(|v| v.parse().ok())
                        .filter(|s: &f64| *s >= 0.0)
                        .ok_or_else(|| err("INTERVAL needs seconds"))?;
                }
                "NODES" => {
                    nodes = toks
                        .get(1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| err("NODES needs a positive integer"))?;
                }
                "TYPE" => {
                    instance = toks.get(1).ok_or_else(|| err("TYPE <instance>"))?.to_string();
                    if InstanceType::by_name(&instance).is_none() {
                        return Err(err(&format!("unknown instance type `{instance}`")));
                    }
                }
                "TIMEOUT" => {
                    timeout_secs = Some(
                        toks.get(1)
                            .and_then(|v| v.parse().ok())
                            .filter(|s: &f64| *s > 0.0)
                            .ok_or_else(|| err("TIMEOUT needs positive seconds"))?,
                    );
                }
                other => return Err(err(&format!("unknown directive `{other}`"))),
            }
        }
        if workflows.is_empty() {
            return Err("manifest declares no workflows".into());
        }
        Ok(Manifest { workflows, interval_secs, nodes, instance, timeout_secs })
    }

    /// Load and parse a manifest file.
    pub fn load(path: impl AsRef<Path>) -> Result<Manifest, String> {
        let path = path.as_ref();
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let base = path.parent().unwrap_or(Path::new("."));
        Self::parse(&text, base)
    }

    /// Total workflow instances the manifest expands to.
    pub fn total_workflows(&self) -> usize {
        self.workflows.iter().map(|(_, c)| c).sum()
    }

    /// Load the workflow files and expand multiplicities into the
    /// submission list (declaration order, counts inline).
    pub fn expand(&self) -> Result<Vec<Arc<Workflow>>, String> {
        let mut out = Vec::with_capacity(self.total_workflows());
        for (path, count) in &self.workflows {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
            let wf = match ext {
                "dax" | "xml" => dewe_dag::parse_dax(&text),
                _ => dewe_dag::parse_workflow(&text),
            }
            .map_err(|e| format!("{}: {e}", path.display()))?;
            let wf = Arc::new(wf);
            for _ in 0..*count {
                out.push(Arc::clone(&wf));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "# demo\nWORKFLOW a.dag COUNT 3\nWORKFLOW b.dax\nINTERVAL 25\nNODES 4\nTYPE r3.8xlarge\nTIMEOUT 120\n";

    #[test]
    fn parses_sample() {
        let m = Manifest::parse(SAMPLE, Path::new("/base")).unwrap();
        assert_eq!(m.workflows.len(), 2);
        assert_eq!(m.workflows[0], (PathBuf::from("/base/a.dag"), 3));
        assert_eq!(m.workflows[1].1, 1);
        assert_eq!(m.interval_secs, 25.0);
        assert_eq!(m.nodes, 4);
        assert_eq!(m.instance, "r3.8xlarge");
        assert_eq!(m.timeout_secs, Some(120.0));
        assert_eq!(m.total_workflows(), 4);
    }

    #[test]
    fn defaults_are_single_node_batch() {
        let m = Manifest::parse("WORKFLOW x.dag", Path::new(".")).unwrap();
        assert_eq!(m.nodes, 1);
        assert_eq!(m.interval_secs, 0.0);
        assert_eq!(m.instance, "c3.8xlarge");
        assert_eq!(m.timeout_secs, None);
    }

    #[test]
    fn rejects_empty_manifest() {
        assert!(Manifest::parse("# nothing\n", Path::new(".")).is_err());
    }

    #[test]
    fn rejects_unknown_instance() {
        let e = Manifest::parse("WORKFLOW x.dag\nTYPE t2.nano", Path::new(".")).unwrap_err();
        assert!(e.contains("unknown instance type"));
    }

    #[test]
    fn rejects_bad_count_and_directive() {
        assert!(Manifest::parse("WORKFLOW x.dag COUNT 0", Path::new(".")).is_err());
        assert!(Manifest::parse("FROBNICATE 7", Path::new(".")).is_err());
    }

    #[test]
    fn expand_loads_and_replicates() {
        let dir = std::env::temp_dir().join(format!("dewe_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wf = dewe_montage::MontageConfig::degree(0.5).build();
        std::fs::write(dir.join("m.dag"), dewe_dag::write_workflow(&wf)).unwrap();
        let m = Manifest::parse("WORKFLOW m.dag COUNT 3", &dir).unwrap();
        let wfs = m.expand().unwrap();
        assert_eq!(wfs.len(), 3);
        assert_eq!(wfs[0].job_count(), wf.job_count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expand_reports_missing_file() {
        let m = Manifest::parse("WORKFLOW nosuch.dag", Path::new("/nonexistent")).unwrap();
        assert!(m.expand().unwrap_err().contains("nosuch.dag"));
    }
}
