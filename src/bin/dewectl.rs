//! `dewectl` — command-line workflow tooling.
//!
//! ```text
//! dewectl inspect  <file>                    structural statistics
//! dewectl convert  <in> <out>                .dag <-> .dax by extension
//! dewectl dot      <file> [--collapsed]      Graphviz to stdout
//! dewectl gen      montage <degree> <out>    generate a workflow file
//! dewectl gen      ligo <groups> <banks> <out>
//! dewectl gen      cybershake <variations> <out>
//! dewectl gen      epigenomics <lanes> <chunks> <out>
//! dewectl gen      sipht <patser_jobs> <out>
//! dewectl simulate <file> [--nodes N] [--type c3.8xlarge] [--workflows W]
//!                         [--interval S] [--trace out.json]
//! dewectl ensemble <manifest>                run a whole campaign manifest
//! dewectl submit   <host:port> <file> [--count N]   submit to a dewe-masterd
//! ```
//!
//! Workflow files use the DAGMan-style text format (`.dag`) or Pegasus DAX
//! (`.dax`/`.xml`), auto-detected by extension.

use std::path::Path;
use std::process::exit;
use std::sync::Arc;

use dewe::core::sim::{run_ensemble, SimRunConfig, SubmissionPlan};
use dewe::dag::{
    lint, parse_dax, parse_workflow, to_dot, to_dot_collapsed, write_dax, write_workflow,
    CriticalPath, LevelProfile, Workflow, WorkflowStats,
};
use dewe::montage::{CyberShakeConfig, EpigenomicsConfig, LigoConfig, MontageConfig, SiphtConfig};
use dewe::simcloud::{ClusterConfig, InstanceType, SharedFsKind, StorageConfig, C3_8XLARGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("inspect") => inspect(&args[1..]),
        Some("convert") => convert(&args[1..]),
        Some("dot") => dot(&args[1..]),
        Some("gen") => generate(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        Some("ensemble") => ensemble(&args[1..]),
        Some("submit") => submit(&args[1..]),
        _ => {
            eprintln!(
                "usage: dewectl <inspect|convert|dot|gen|simulate|ensemble|submit> ... (see crate docs)"
            );
            exit(2);
        }
    };
    if let Err(msg) = result {
        eprintln!("dewectl: {msg}");
        exit(1);
    }
}

fn load(path: &str) -> Result<Workflow, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let ext = Path::new(path).extension().and_then(|e| e.to_str()).unwrap_or("");
    match ext {
        "dax" | "xml" => parse_dax(&text).map_err(|e| format!("{path}: {e}")),
        _ => parse_workflow(&text).map_err(|e| format!("{path}: {e}")),
    }
}

fn save(wf: &Workflow, path: &str) -> Result<(), String> {
    let ext = Path::new(path).extension().and_then(|e| e.to_str()).unwrap_or("");
    let text = match ext {
        "dax" | "xml" => write_dax(wf),
        _ => write_workflow(wf),
    };
    std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))
}

fn inspect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("inspect needs a file")?;
    let wf = load(path)?;
    let stats = WorkflowStats::of(&wf);
    let lp = LevelProfile::of(&wf);
    let cp = CriticalPath::of(&wf);
    println!("workflow      : {}", wf.name());
    println!("jobs          : {}", stats.total_jobs);
    println!("edges         : {}", stats.edges);
    println!(
        "files         : {} input ({:.2} GB) + {} produced ({:.2} GB)",
        stats.input_files,
        stats.input_bytes as f64 / 1e9,
        stats.intermediate_files,
        stats.intermediate_bytes as f64 / 1e9
    );
    println!("total CPU     : {:.0} core-seconds", stats.total_cpu_seconds);
    println!("depth / width : {} levels, max width {}", lp.depth(), lp.max_width());
    println!("critical path : {} jobs, {:.1} CPU-seconds", cp.jobs.len(), cp.cpu_seconds);
    let blocking = lp.blocking_jobs();
    println!("blocking jobs : {}", blocking.len());
    for &j in blocking.iter().take(8) {
        println!("                {} ({:.0}s)", wf.job(j).name, wf.job(j).cpu_seconds);
    }
    println!("by transformation:");
    for (xform, count, cpu) in stats.by_xform.iter().take(12) {
        println!("  {xform:<20} x{count:<7} {cpu:>10.0} cpu-s");
    }
    println!("top-3 homogeneity: {:.1}%", 100.0 * stats.homogeneity(3));
    let findings = lint(&wf);
    if findings.is_empty() {
        println!("lint          : clean");
    } else {
        println!("lint          : {} findings", findings.len());
        for f in findings.iter().take(10) {
            println!("                {f:?}");
        }
    }
    Ok(())
}

fn convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("convert needs <in> <out>".into());
    };
    let wf = load(input)?;
    save(&wf, output)?;
    println!("wrote {} ({} jobs)", output, wf.job_count());
    Ok(())
}

fn dot(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("dot needs a file")?;
    let wf = load(path)?;
    let collapsed = args.iter().any(|a| a == "--collapsed");
    if collapsed || wf.job_count() > 2000 {
        if !collapsed {
            eprintln!("(large workflow: emitting collapsed view; pass --collapsed to silence)");
        }
        print!("{}", to_dot_collapsed(&wf));
    } else {
        print!("{}", to_dot(&wf));
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("montage") => {
            let [_, degree, out] = args else {
                return Err("gen montage <degree> <out>".into());
            };
            let d: f64 = degree.parse().map_err(|_| "bad degree")?;
            let wf = MontageConfig::degree(d).build();
            save(&wf, out)?;
            println!("montage {d} deg: {} jobs -> {out}", wf.job_count());
        }
        Some("ligo") => {
            let [_, groups, banks, out] = args else {
                return Err("gen ligo <groups> <banks> <out>".into());
            };
            let wf = LigoConfig::new(
                groups.parse().map_err(|_| "bad groups")?,
                banks.parse().map_err(|_| "bad banks")?,
            )
            .build();
            save(&wf, out)?;
            println!("ligo: {} jobs -> {out}", wf.job_count());
        }
        Some("cybershake") => {
            let [_, vars, out] = args else {
                return Err("gen cybershake <variations> <out>".into());
            };
            let wf = CyberShakeConfig::new(vars.parse().map_err(|_| "bad variations")?).build();
            save(&wf, out)?;
            println!("cybershake: {} jobs -> {out}", wf.job_count());
        }
        Some("epigenomics") => {
            let [_, lanes, chunks, out] = args else {
                return Err("gen epigenomics <lanes> <chunks> <out>".into());
            };
            let wf = EpigenomicsConfig::new(
                lanes.parse().map_err(|_| "bad lanes")?,
                chunks.parse().map_err(|_| "bad chunks")?,
            )
            .build();
            save(&wf, out)?;
            println!("epigenomics: {} jobs -> {out}", wf.job_count());
        }
        Some("sipht") => {
            let [_, patser, out] = args else {
                return Err("gen sipht <patser_jobs> <out>".into());
            };
            let wf = SiphtConfig::new(patser.parse().map_err(|_| "bad patser_jobs")?).build();
            save(&wf, out)?;
            println!("sipht: {} jobs -> {out}", wf.job_count());
        }
        _ => return Err("gen <montage|ligo|cybershake|epigenomics|sipht> ...".into()),
    }
    Ok(())
}

fn submit(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("submit needs <host:port> <file> [--count N]")?;
    let path = args.get(1).ok_or("submit needs <host:port> <file> [--count N]")?;
    let mut count = 1usize;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--count" => {
                count = args.get(i + 1).and_then(|v| v.parse().ok()).ok_or("--count N")?;
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let wf = load(path)?;
    for n in 0..count {
        let name = if count == 1 { wf.name().to_string() } else { format!("{}-{n}", wf.name()) };
        dewe::core::realtime::submit_over_tcp(addr.as_str(), name, &wf)
            .map_err(|e| format!("submit to {addr}: {e}"))?;
    }
    println!("submitted {count} x {} ({} jobs each) to {addr}", wf.name(), wf.job_count());
    Ok(())
}

fn ensemble(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("ensemble needs a manifest file")?;
    let manifest = dewe::manifest::Manifest::load(path)?;
    let wfs = manifest.expand()?;
    let itype = InstanceType::by_name(&manifest.instance).expect("validated at parse");
    let storage = if manifest.nodes == 1 {
        StorageConfig::LocalDisk
    } else {
        StorageConfig::Shared(SharedFsKind::DistFs)
    };
    let cluster = ClusterConfig { instance: *itype, nodes: manifest.nodes, storage };
    let mut cfg = SimRunConfig::new(cluster);
    if manifest.interval_secs > 0.0 {
        cfg.submission = SubmissionPlan::Interval(manifest.interval_secs);
    }
    if let Some(t) = manifest.timeout_secs {
        cfg.default_timeout_secs = t;
    }
    println!("ensemble: {} workflow instances on {} x {}", wfs.len(), manifest.nodes, itype.name);
    let report = run_ensemble(&wfs, &cfg);
    println!(
        "  makespan   : {:.1}s ({:.1} min)",
        report.makespan_secs,
        report.makespan_secs / 60.0
    );
    println!("  jobs       : {}", report.engine.jobs_completed);
    println!(
        "  est. cost  : ${:.2} (${:.4}/workflow)",
        report.cost_usd,
        report.cost_usd / wfs.len() as f64
    );
    if !report.completed {
        return Err("ensemble did not complete".into());
    }
    Ok(())
}

fn simulate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("simulate needs a file")?;
    let wf = Arc::new(load(path)?);
    let mut nodes = 1usize;
    let mut workflows = 1usize;
    let mut itype: &'static InstanceType = &C3_8XLARGE;
    let mut interval = 0.0f64;
    let mut trace_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                nodes = args.get(i + 1).and_then(|v| v.parse().ok()).ok_or("--nodes N")?;
                i += 2;
            }
            "--workflows" => {
                workflows = args.get(i + 1).and_then(|v| v.parse().ok()).ok_or("--workflows W")?;
                i += 2;
            }
            "--type" => {
                let name = args.get(i + 1).ok_or("--type <instance>")?;
                itype = InstanceType::by_name(name)
                    .ok_or_else(|| format!("unknown instance type {name}"))?;
                i += 2;
            }
            "--interval" => {
                interval = args.get(i + 1).and_then(|v| v.parse().ok()).ok_or("--interval S")?;
                i += 2;
            }
            "--trace" => {
                trace_out = Some(args.get(i + 1).ok_or("--trace <out.json>")?.clone());
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let storage = if nodes == 1 {
        StorageConfig::LocalDisk
    } else {
        StorageConfig::Shared(SharedFsKind::DistFs)
    };
    let cluster = ClusterConfig { instance: *itype, nodes, storage };
    let wfs: Vec<_> = (0..workflows).map(|_| Arc::clone(&wf)).collect();
    let mut cfg = SimRunConfig::new(cluster);
    if interval > 0.0 {
        cfg.submission = SubmissionPlan::Interval(interval);
    }
    cfg.record_trace = trace_out.is_some();
    let report = run_ensemble(&wfs, &cfg);
    println!("simulated {workflows} x {} on {nodes} x {}: ", wf.name(), itype.name);
    println!(
        "  makespan   : {:.1}s ({:.1} min)",
        report.makespan_secs,
        report.makespan_secs / 60.0
    );
    println!("  jobs       : {}", report.engine.jobs_completed);
    println!("  cpu        : {:.0} core-seconds", report.total_cpu_core_secs);
    println!(
        "  disk reads : {:.2} GB (cache hit rate {:.0}%)",
        report.total_bytes_read / 1e9,
        100.0 * report.cache_hit_rate
    );
    println!("  disk writes: {:.2} GB", report.total_bytes_written / 1e9);
    println!("  est. cost  : ${:.2} (hourly billing)", report.cost_usd);
    if let (Some(path), Some(trace)) = (&trace_out, &report.trace) {
        std::fs::write(path, trace.to_chrome_json()).map_err(|e| format!("write {path}: {e}"))?;
        let qw = trace.queue_wait_summary().expect("trace non-empty");
        println!(
            "  trace      : {} events -> {path} (queue wait p50 {:.2}s p99 {:.2}s)",
            trace.len(),
            qw.p50,
            qw.p99
        );
    }
    if !report.completed {
        return Err("simulation did not complete (engine starvation?)".into());
    }
    Ok(())
}
