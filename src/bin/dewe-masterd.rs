//! `dewe-masterd` — the networked master daemon.
//!
//! Binds the TCP endpoint, spawns the same master serve loop the
//! in-process runtime uses (engine, retry machinery, liveness plane, WAL
//! journal), and runs the ensemble until every expected workflow
//! settles. Workers connect with `dewe-workerd`; workflows arrive with
//! `dewectl submit`.
//!
//! ```text
//! dewe-masterd --listen <addr> [--expect N] [--state-dir DIR]
//!              [--journal FILE] [--recover] [--lease-secs S]
//!              [--timeout S] [--shards N] [--threads N]
//! ```
//!
//! With `--state-dir`, accepted workflows are spooled to disk; together
//! with `--journal` + `--recover`, a restarted master rebuilds its
//! registry from the spool and its engine from the journal, then picks
//! the ensemble back up — the paper's master-failure drill, over real
//! sockets.

use std::io::Write;
use std::process::exit;
use std::time::Duration;

use dewe::core::realtime::{
    load_spool, spawn_master_on, MasterConfig, MasterEvent, Registry, TcpMaster, TcpMasterOptions,
};

struct Args {
    listen: String,
    state_dir: Option<String>,
    expect: Option<usize>,
    journal: Option<String>,
    recover: bool,
    lease_secs: Option<f64>,
    timeout: Option<f64>,
    shards: Option<usize>,
    threads: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: String::new(),
        state_dir: None,
        expect: None,
        journal: None,
        recover: false,
        lease_secs: None,
        timeout: None,
        shards: None,
        threads: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 2;
        argv.get(*i - 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => args.listen = value(&mut i, "--listen")?,
            "--state-dir" => args.state_dir = Some(value(&mut i, "--state-dir")?),
            "--expect" => {
                args.expect = Some(value(&mut i, "--expect")?.parse().map_err(|_| "bad --expect")?)
            }
            "--journal" => args.journal = Some(value(&mut i, "--journal")?),
            "--recover" => {
                args.recover = true;
                i += 1;
            }
            "--lease-secs" => {
                args.lease_secs =
                    Some(value(&mut i, "--lease-secs")?.parse().map_err(|_| "bad --lease-secs")?)
            }
            "--timeout" => {
                args.timeout =
                    Some(value(&mut i, "--timeout")?.parse().map_err(|_| "bad --timeout")?)
            }
            "--shards" => {
                args.shards = Some(value(&mut i, "--shards")?.parse().map_err(|_| "bad --shards")?)
            }
            "--threads" => {
                args.threads =
                    Some(value(&mut i, "--threads")?.parse().map_err(|_| "bad --threads")?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.listen.is_empty() {
        return Err("--listen <addr> is required".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("dewe-masterd: {msg}");
            eprintln!(
                "usage: dewe-masterd --listen <addr> [--expect N] [--state-dir DIR] \
                 [--journal FILE] [--recover] [--lease-secs S] [--timeout S] \
                 [--shards N] [--threads N]"
            );
            exit(2);
        }
    };

    let options = TcpMasterOptions {
        state_dir: args.state_dir.as_ref().map(Into::into),
        ..TcpMasterOptions::default()
    };
    let transport = match TcpMaster::bind(&args.listen, options) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dewe-masterd: bind {}: {e}", args.listen);
            exit(1);
        }
    };
    // Parsed by tests and wrapper scripts: keep the format stable.
    println!("dewe-masterd: listening on {}", transport.local_addr());
    let _ = std::io::stdout().flush();

    // A restarted master rebuilds its registry from the workflow spool
    // *before* recovery replays the journal against it.
    let registry = Registry::new();
    if let Some(dir) = &args.state_dir {
        match load_spool(dir.as_ref()) {
            Ok(spooled) => {
                for (id, name, workflow) in spooled {
                    println!("dewe-masterd: respooled workflow {} ({name})", id.0);
                    registry.insert(id, workflow);
                }
            }
            Err(e) => {
                eprintln!("dewe-masterd: state dir {dir}: {e}");
                exit(1);
            }
        }
    }

    let mut cfg = MasterConfig::builder().recover(args.recover);
    if let Some(n) = args.expect {
        cfg = cfg.expected_workflows(n);
    }
    if let Some(path) = &args.journal {
        cfg = cfg.journal_path(path);
    }
    if let Some(s) = args.lease_secs {
        cfg = cfg.lease_secs(s);
    }
    if let Some(s) = args.timeout {
        cfg = cfg.default_timeout_secs(s);
    }
    if let Some(n) = args.shards {
        cfg = cfg.shards(n);
    }
    if let Some(n) = args.threads {
        cfg = cfg.threads(n);
    }

    let handle = spawn_master_on(transport.clone(), registry, cfg.build());

    let mut all_completed = false;
    while let Ok(event) = handle.events.recv() {
        match event {
            MasterEvent::WorkflowCompleted { workflow, makespan_secs } => {
                println!("dewe-masterd: workflow {} completed in {makespan_secs:.2}s", workflow.0);
            }
            MasterEvent::WorkflowAbandoned { workflow, dead_lettered } => {
                println!(
                    "dewe-masterd: workflow {} abandoned ({dead_lettered} dead-lettered)",
                    workflow.0
                );
            }
            MasterEvent::AllCompleted { .. } => {
                all_completed = true;
                break;
            }
            MasterEvent::AllSettled { .. } => break,
        }
        let _ = std::io::stdout().flush();
    }

    let stats = handle.join();
    // Graceful exit: every worker gets a Bye so its daemon can stop too.
    transport.shutdown();
    // Give worker links a beat to drain the Bye before the process exits.
    std::thread::sleep(Duration::from_millis(50));
    println!(
        "dewe-masterd: done — {} workflows, {} jobs completed, {} resubmissions, {} dead-lettered",
        stats.workflows_completed, stats.jobs_completed, stats.resubmissions, stats.dead_lettered
    );
    exit(if all_completed { 0 } else { 3 });
}
