//! `dewe-workerd` — the networked worker daemon.
//!
//! Connects to a `dewe-masterd`, mirrors announced workflows into a
//! local registry, and runs the same slot/heartbeat loops the in-process
//! worker uses. Jobs execute through a pluggable runner selected on the
//! command line. The daemon exits when the master says the ensemble is
//! done (Bye); if the master crashes, the link keeps reconnecting and
//! rides out the restart.
//!
//! ```text
//! dewe-workerd --master <addr> [--id N] [--generation N] [--slots N]
//!              [--window N] [--shard N] [--heartbeat S]
//!              [--runner noop|sleep:<scale>|cpu:<scale>]
//! ```

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use dewe::core::realtime::{
    spawn_worker_on, CpuRunner, JobRunner, NoopRunner, Registry, SleepRunner, TcpWorkerLink,
    TcpWorkerOptions, WorkerConfig,
};

struct Args {
    master: String,
    id: u32,
    generation: u32,
    slots: usize,
    window: Option<u32>,
    shard: Option<u32>,
    heartbeat: Option<f64>,
    runner: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        master: String::new(),
        id: 0,
        generation: 0,
        slots: 4,
        window: None,
        shard: None,
        heartbeat: None,
        runner: "sleep:1.0".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 2;
        argv.get(*i - 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--master" => args.master = value(&mut i, "--master")?,
            "--id" => args.id = value(&mut i, "--id")?.parse().map_err(|_| "bad --id")?,
            "--generation" => {
                args.generation =
                    value(&mut i, "--generation")?.parse().map_err(|_| "bad --generation")?
            }
            "--slots" => {
                args.slots = value(&mut i, "--slots")?.parse().map_err(|_| "bad --slots")?
            }
            "--window" => {
                args.window = Some(value(&mut i, "--window")?.parse().map_err(|_| "bad --window")?)
            }
            "--shard" => {
                args.shard = Some(value(&mut i, "--shard")?.parse().map_err(|_| "bad --shard")?)
            }
            "--heartbeat" => {
                args.heartbeat =
                    Some(value(&mut i, "--heartbeat")?.parse().map_err(|_| "bad --heartbeat")?)
            }
            "--runner" => args.runner = value(&mut i, "--runner")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.master.is_empty() {
        return Err("--master <addr> is required".into());
    }
    Ok(args)
}

fn make_runner(spec: &str) -> Result<Arc<dyn JobRunner>, String> {
    if spec == "noop" {
        return Ok(Arc::new(NoopRunner));
    }
    if let Some(scale) = spec.strip_prefix("sleep:") {
        let scale: f64 = scale.parse().map_err(|_| format!("bad sleep scale in {spec}"))?;
        return Ok(Arc::new(SleepRunner::new(scale)));
    }
    if let Some(scale) = spec.strip_prefix("cpu:") {
        let scale: f64 = scale.parse().map_err(|_| format!("bad cpu scale in {spec}"))?;
        return Ok(Arc::new(CpuRunner::new(scale)));
    }
    Err(format!("unknown runner {spec} (expected noop, sleep:<scale>, cpu:<scale>)"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("dewe-workerd: {msg}");
            eprintln!(
                "usage: dewe-workerd --master <addr> [--id N] [--generation N] [--slots N] \
                 [--window N] [--shard N] [--heartbeat S] [--runner noop|sleep:S|cpu:S]"
            );
            exit(2);
        }
    };
    let runner = match make_runner(&args.runner) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("dewe-workerd: {msg}");
            exit(2);
        }
    };

    let registry = Registry::new();
    // Window default: enough credit to keep every slot busy with one
    // dispatch queued behind it.
    let window = args.window.unwrap_or((args.slots as u32).saturating_mul(2).max(1));
    let link = match TcpWorkerLink::connect(
        &args.master,
        registry.clone(),
        TcpWorkerOptions {
            worker_id: args.id,
            generation: args.generation,
            shard: args.shard,
            window,
            ..TcpWorkerOptions::default()
        },
    ) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dewe-workerd: connect {}: {e}", args.master);
            exit(1);
        }
    };
    println!("dewe-workerd: worker {} (gen {}) serving {}", args.id, args.generation, args.master);

    let handle = spawn_worker_on(
        Arc::new(link.clone()),
        registry,
        runner,
        WorkerConfig {
            worker_id: args.id,
            generation: args.generation,
            slots: args.slots,
            shard: args.shard.map(|s| s as usize),
            heartbeat_interval: args.heartbeat.map(Duration::from_secs_f64),
            ..WorkerConfig::default()
        },
    );

    // Run until the master announces completion; slot loops then see the
    // closed dispatch topic and exit on their own.
    while !link.master_said_bye() && !link_closed(&link) {
        std::thread::sleep(Duration::from_millis(100));
    }
    let executed = handle.stop();
    link.close();
    println!("dewe-workerd: worker {} done — {executed} jobs executed", args.id);
}

fn link_closed(link: &TcpWorkerLink) -> bool {
    use dewe::mq::WorkerTransport;
    link.dispatch_closed()
}
