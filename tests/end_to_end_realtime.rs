//! End-to-end integration: the threaded DEWE v2 runtime executing real
//! Montage-shaped ensembles, including fault injection and real file
//! data flow.

use std::sync::Arc;
use std::time::Duration;

use dewe::core::realtime::{
    spawn_master, spawn_worker, submit, FsRunner, MasterConfig, MasterEvent, MessageBus,
    NoopRunner, Registry, SleepRunner, WorkerConfig,
};
use dewe::montage::{CyberShakeConfig, EpigenomicsConfig, LigoConfig, MontageConfig, SiphtConfig};

fn drain_until_all_done(master: &dewe::core::realtime::MasterHandle) -> dewe::core::EngineStats {
    loop {
        match master.events.recv_timeout(Duration::from_secs(120)) {
            Ok(MasterEvent::AllCompleted { stats }) => return stats,
            Ok(MasterEvent::WorkflowCompleted { .. }) => continue,
            Ok(other) => panic!("unexpected event: {other:?}"),
            Err(e) => panic!("master stalled: {e}"),
        }
    }
}

#[test]
fn montage_ensemble_runs_to_completion() {
    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(
        bus.clone(),
        registry.clone(),
        MasterConfig::builder().expected_workflows(3).build(),
    );
    let workers: Vec<_> = (0..3)
        .map(|id| {
            spawn_worker(
                bus.clone(),
                registry.clone(),
                Arc::new(NoopRunner),
                WorkerConfig { worker_id: id, slots: 4, ..WorkerConfig::default() },
            )
        })
        .collect();

    let mut expected_jobs = 0;
    for i in 0..3 {
        let wf = Arc::new(MontageConfig::degree(0.5).with_seed(i).build());
        expected_jobs += wf.job_count() as u64;
        submit(&bus, format!("wf{i}"), wf);
    }
    let stats = drain_until_all_done(&master);
    assert_eq!(stats.jobs_completed, expected_jobs);
    assert_eq!(stats.workflows_completed, 3);
    master.join();
    let executed: u64 = workers.into_iter().map(|w| w.stop()).sum();
    assert_eq!(executed, expected_jobs);
}

#[test]
fn mixed_application_ensemble() {
    // Montage + LIGO + CyberShake workflows in one ensemble: the master
    // multiplexes heterogeneous DAGs over one dispatch topic.
    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(
        bus.clone(),
        registry.clone(),
        MasterConfig::builder().expected_workflows(5).build(),
    );
    let worker = spawn_worker(
        bus.clone(),
        registry.clone(),
        Arc::new(NoopRunner),
        WorkerConfig { worker_id: 0, slots: 8, ..WorkerConfig::default() },
    );
    let montage = Arc::new(MontageConfig::degree(0.5).build());
    let ligo = Arc::new(LigoConfig::new(2, 3).build());
    let cs = Arc::new(CyberShakeConfig::new(10).build());
    let epi = Arc::new(EpigenomicsConfig::new(2, 3).build());
    let sipht = Arc::new(SiphtConfig::new(9).build());
    let total = (montage.job_count()
        + ligo.job_count()
        + cs.job_count()
        + epi.job_count()
        + sipht.job_count()) as u64;
    submit(&bus, "montage", montage);
    submit(&bus, "ligo", ligo);
    submit(&bus, "cybershake", cs);
    submit(&bus, "epigenomics", epi);
    submit(&bus, "sipht", sipht);
    let stats = drain_until_all_done(&master);
    assert_eq!(stats.jobs_completed, total);
    master.join();
    worker.stop();
}

#[test]
fn worker_crash_recovery_end_to_end() {
    // Kill the only worker mid-ensemble; a fresh worker finishes the job
    // set via timeout resubmission (paper §V.A.3 in real threads).
    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(
        bus.clone(),
        registry.clone(),
        MasterConfig::builder()
            .default_timeout_secs(0.3)
            .timeout_scan_interval(Duration::from_millis(20))
            .expected_workflows(1)
            .build(),
    );
    let w1 = spawn_worker(
        bus.clone(),
        registry.clone(),
        Arc::new(SleepRunner::new(0.0005)),
        WorkerConfig { worker_id: 1, slots: 2, ..WorkerConfig::default() },
    );
    let wf = Arc::new(MontageConfig::degree(0.5).build());
    let jobs = wf.job_count() as u64;
    submit(&bus, "victim", wf);
    std::thread::sleep(Duration::from_millis(50));
    w1.kill();

    let w2 = spawn_worker(
        bus.clone(),
        registry,
        Arc::new(SleepRunner::new(0.0005)),
        WorkerConfig { worker_id: 2, slots: 4, ..WorkerConfig::default() },
    );
    let stats = drain_until_all_done(&master);
    assert_eq!(stats.jobs_completed, jobs);
    master.join();
    w2.stop();
}

#[test]
fn real_file_dataflow_produces_final_output() {
    let wf = Arc::new(MontageConfig::degree(0.5).with_name("e2e").build());
    let workspace = std::env::temp_dir().join(format!("dewe_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&workspace);
    let runner = FsRunner::new(&workspace, 1e-6);
    runner.stage_inputs(&wf).unwrap();

    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(
        bus.clone(),
        registry.clone(),
        MasterConfig::builder().expected_workflows(1).build(),
    );
    let worker = spawn_worker(
        bus.clone(),
        registry,
        Arc::new(runner),
        WorkerConfig { worker_id: 0, slots: 8, ..WorkerConfig::default() },
    );
    submit(&bus, "e2e", Arc::clone(&wf));
    let stats = drain_until_all_done(&master);
    assert_eq!(stats.jobs_completed as usize, wf.job_count());
    // No job may ever have failed on a missing input: resubmissions only
    // happen on worker death, and none died.
    assert_eq!(stats.resubmissions, 0);
    assert!(workspace.join("e2e/mosaic.jpg").exists(), "final mosaic written");
    master.join();
    worker.stop();
    let _ = std::fs::remove_dir_all(&workspace);
}

#[test]
fn results_identical_across_cluster_configurations() {
    // The paper verifies DEWE v2 vs Pegasus by comparing size and MD5 of
    // the final mosaic (§V.A). In-process analogue: run the same workflow
    // with 1 worker and with 4 workers (different interleavings) — final
    // output checksums must match.
    let run = |workers: usize, tag: &str| -> u64 {
        let wf = Arc::new(MontageConfig::degree(0.5).with_name("verify").build());
        let workspace =
            std::env::temp_dir().join(format!("dewe_verify_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&workspace);
        let runner = FsRunner::new(&workspace, 1e-5);
        runner.stage_inputs(&wf).unwrap();
        let bus = MessageBus::new();
        let registry = Registry::new();
        let master = spawn_master(
            bus.clone(),
            registry.clone(),
            MasterConfig::builder().expected_workflows(1).build(),
        );
        let handles: Vec<_> = (0..workers)
            .map(|id| {
                spawn_worker(
                    bus.clone(),
                    registry.clone(),
                    Arc::new(runner.clone()),
                    WorkerConfig { worker_id: id as u32, slots: 2, ..WorkerConfig::default() },
                )
            })
            .collect();
        submit(&bus, "verify", Arc::clone(&wf));
        drain_until_all_done(&master);
        master.join();
        for h in handles {
            h.stop();
        }
        let sum = runner.checksum_outputs(&wf).unwrap();
        let _ = std::fs::remove_dir_all(&workspace);
        sum
    };
    assert_eq!(run(1, "solo"), run(4, "quad"));
}

#[test]
fn late_submission_is_served() {
    // "Scientists can submit workflows from any nodes at any time": a
    // workflow submitted long after the first completes is still served by
    // the same daemons.
    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(
        bus.clone(),
        registry.clone(),
        MasterConfig::builder().expected_workflows(2).build(),
    );
    let worker = spawn_worker(
        bus.clone(),
        registry,
        Arc::new(NoopRunner),
        WorkerConfig { worker_id: 0, slots: 2, ..WorkerConfig::default() },
    );
    submit(&bus, "first", Arc::new(MontageConfig::degree(0.5).build()));
    // Wait for the first to finish before submitting the second.
    loop {
        if let Ok(MasterEvent::WorkflowCompleted { .. }) =
            master.events.recv_timeout(Duration::from_secs(60))
        {
            break;
        }
    }
    submit(&bus, "second", Arc::new(MontageConfig::degree(0.5).with_seed(9).build()));
    let stats = drain_until_all_done(&master);
    assert_eq!(stats.workflows_completed, 2);
    master.join();
    worker.stop();
}
