//! Integration: the on-disk workflow format feeding the engines, and the
//! provisioning pipeline closing the loop against actual simulated runs.

use std::sync::Arc;

use dewe::core::sim::{run_ensemble, SimRunConfig};
use dewe::dag::{parse_workflow, write_workflow};
use dewe::montage::{LigoConfig, MontageConfig};
use dewe::provision::{recommend, required_nodes, ProfileConfig, Profiler};
use dewe::simcloud::{ClusterConfig, SharedFsKind, StorageConfig, C3_8XLARGE};

/// A workflow serialized to the DAGMan-style text format, reparsed, and
/// executed must behave identically to the original.
#[test]
fn serialized_workflow_executes_identically() {
    let original = Arc::new(MontageConfig::degree(1.0).build());
    let text = write_workflow(&original);
    let reparsed = Arc::new(parse_workflow(&text).expect("roundtrip parse"));
    assert_eq!(original.job_count(), reparsed.job_count());

    let cluster =
        ClusterConfig { instance: C3_8XLARGE, nodes: 1, storage: StorageConfig::LocalDisk };
    let a = run_ensemble(&[original], &SimRunConfig::new(cluster));
    let b = run_ensemble(&[reparsed], &SimRunConfig::new(cluster));
    assert!(a.completed && b.completed);
    assert_eq!(a.makespan_secs, b.makespan_secs, "identical DAG => identical schedule");
    assert_eq!(a.total_bytes_written, b.total_bytes_written);
}

/// Workflow files survive a disk round trip (the shared-FS workflow folder
/// of the paper).
#[test]
fn workflow_file_on_disk() {
    let wf = LigoConfig::new(2, 4).build();
    let path = std::env::temp_dir().join(format!("dewe_wf_{}.dag", std::process::id()));
    std::fs::write(&path, write_workflow(&wf)).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let parsed = parse_workflow(&text).unwrap();
    assert_eq!(parsed.job_count(), wf.job_count());
    assert_eq!(parsed.edge_count(), wf.edge_count());
    let _ = std::fs::remove_file(&path);
}

/// The provisioning loop closes: profile on small clusters, size a cluster
/// with Eq. 2, run the target ensemble on the design, and the measured
/// time respects the deadline (within the safety the ceiling in Eq. 2
/// provides).
#[test]
fn provisioning_closes_the_loop() {
    let template = Arc::new(MontageConfig::degree(1.0).build());
    let profiler = Profiler::new(
        Arc::clone(&template),
        ProfileConfig {
            single_node_max_workflows: 2,
            multi_node_workflows: 8,
            multi_node_range: (2, 4),
            shared_fs: SharedFsKind::Nfs,
            per_job_overhead_secs: 0.1,
        },
    );
    let profile = profiler.profile(&C3_8XLARGE);
    let index = profile.converged_index;
    assert!(index > 0.0);

    let workflows = 24;
    let deadline = 400.0;
    let nodes = required_nodes(workflows, index, deadline);
    assert!(nodes >= 1);

    let wfs: Vec<_> = (0..workflows).map(|_| Arc::clone(&template)).collect();
    let cluster = ClusterConfig {
        instance: C3_8XLARGE,
        nodes,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    };
    let report = run_ensemble(&wfs, &SimRunConfig::new(cluster));
    assert!(report.completed);
    // The NFS-profiled index is conservative for a DistFs execution, so
    // the design must meet its deadline with margin.
    assert!(
        report.makespan_secs <= deadline * 1.1,
        "design missed deadline: {}s on {} nodes (deadline {deadline}s)",
        report.makespan_secs,
        nodes
    );
}

/// Recommendations are internally consistent: every plan meets the
/// deadline by construction and plans are sorted by predicted cost.
#[test]
fn recommendation_consistency() {
    let cands: Vec<(&'static dewe::simcloud::InstanceType, f64)> = vec![
        (&dewe::simcloud::C3_8XLARGE, 0.0015),
        (&dewe::simcloud::R3_8XLARGE, 0.0024),
        (&dewe::simcloud::I2_8XLARGE, 0.0026),
    ];
    let plans = recommend(&cands, 200, 3300.0);
    for plan in &plans {
        assert!(plan.predicted_secs <= 3300.0 + 1e-9);
        assert!(plan.predicted_cost > 0.0);
    }
    for w in plans.windows(2) {
        assert!(w[0].predicted_cost <= w[1].predicted_cost);
    }
}
