//! End-to-end integration for the networked runtime: the same master
//! serve loop and worker daemons as the in-process path, but wired over
//! loopback TCP — including the paper's two failure drills (worker kill,
//! master kill + journaled restart) and an outcome-equivalence check
//! against the in-process transport.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dewe::core::realtime::{
    load_spool, spawn_master, spawn_master_on, spawn_worker, spawn_worker_on, submit,
    submit_over_tcp, MasterConfig, MasterEvent, MessageBus, Registry, SleepRunner, TcpMaster,
    TcpMasterOptions, TcpWorkerLink, TcpWorkerOptions, WorkerConfig,
};
use dewe::core::EngineStats;
use dewe::montage::MontageConfig;

fn drain_until_all_done(master: &dewe::core::realtime::MasterHandle) -> EngineStats {
    loop {
        match master.events.recv_timeout(Duration::from_secs(120)) {
            Ok(MasterEvent::AllCompleted { stats }) => return stats,
            Ok(MasterEvent::WorkflowCompleted { .. }) => continue,
            Ok(other) => panic!("unexpected event: {other:?}"),
            Err(e) => panic!("master stalled: {e}"),
        }
    }
}

/// The outcome facts that must not depend on the transport. Counters
/// that legitimately vary with timing (resubmissions, duplicate
/// completions) are deliberately excluded.
#[derive(Debug, PartialEq)]
struct Outcome {
    workflows_completed: usize,
    workflows_abandoned: usize,
    jobs_completed: u64,
    dead_lettered: u64,
}

impl Outcome {
    fn of(stats: &EngineStats) -> Self {
        Self {
            workflows_completed: stats.workflows_completed,
            workflows_abandoned: stats.workflows_abandoned,
            jobs_completed: stats.jobs_completed,
            dead_lettered: stats.dead_lettered,
        }
    }
}

fn montage_ensemble(n: usize) -> Vec<Arc<dewe::dag::Workflow>> {
    (0..n).map(|i| Arc::new(MontageConfig::degree(0.1).with_seed(i as u64).build())).collect()
}

/// The headline acceptance run: a 20-workflow Montage ensemble completes
/// over loopback TCP with three worker daemons, survives one worker
/// being killed mid-run (lease-expiry requeue over the wire), and its
/// outcome matches the in-process realtime path running the identical
/// ensemble.
#[test]
fn twenty_montage_over_tcp_with_worker_kill_matches_in_process() {
    let workflows = montage_ensemble(20);
    let expected_jobs: u64 = workflows.iter().map(|w| w.job_count() as u64).sum();

    let config = || {
        MasterConfig::builder()
            .expected_workflows(20)
            .default_timeout_secs(30.0)
            .timeout_scan_interval(Duration::from_millis(20))
            .lease_secs(0.4)
            .build()
    };

    // Reference arm: the in-process bus, same ensemble, same worker
    // shape, same mid-run kill.
    let reference = {
        let bus = MessageBus::new();
        let registry = Registry::new();
        let master = spawn_master(bus.clone(), registry.clone(), config());
        let workers: Vec<_> = (0..3)
            .map(|id| {
                spawn_worker(
                    bus.clone(),
                    registry.clone(),
                    Arc::new(SleepRunner::new(0.0002)),
                    WorkerConfig {
                        worker_id: id,
                        slots: 4,
                        heartbeat_interval: Some(Duration::from_millis(50)),
                        ..WorkerConfig::default()
                    },
                )
            })
            .collect();
        for (i, wf) in workflows.iter().enumerate() {
            submit(&bus, format!("montage-{i}"), Arc::clone(wf));
        }
        std::thread::sleep(Duration::from_millis(300));
        let mut workers = workers;
        workers.remove(1).kill();
        let stats = drain_until_all_done(&master);
        master.join();
        for w in workers {
            w.stop();
        }
        stats
    };

    // Networked arm: same ensemble over loopback TCP.
    let networked = {
        let transport = TcpMaster::bind("127.0.0.1:0", TcpMasterOptions::default()).unwrap();
        let addr = transport.local_addr();
        let registry_master = Registry::new();
        let master = spawn_master_on(transport.clone(), registry_master, config());

        let spawn_net_worker = |id: u32| {
            let registry = Registry::new();
            let link = TcpWorkerLink::connect(
                addr,
                registry.clone(),
                TcpWorkerOptions { worker_id: id, window: 8, ..TcpWorkerOptions::default() },
            )
            .unwrap();
            let handle = spawn_worker_on(
                Arc::new(link.clone()),
                registry,
                Arc::new(SleepRunner::new(0.0002)),
                WorkerConfig {
                    worker_id: id,
                    slots: 4,
                    heartbeat_interval: Some(Duration::from_millis(50)),
                    ..WorkerConfig::default()
                },
            );
            (link, handle)
        };
        let mut workers: Vec<_> = (0..3).map(spawn_net_worker).collect();

        for (i, wf) in workflows.iter().enumerate() {
            submit_over_tcp(addr, format!("montage-{i}"), wf).unwrap();
        }
        std::thread::sleep(Duration::from_millis(300));
        // Kill one worker daemon outright: in-flight jobs abandoned with
        // no ack, heartbeats stop, the socket drops. The master's lease
        // expiry requeues its jobs to the survivors — over the wire.
        let (dead_link, dead_handle) = workers.remove(1);
        dead_handle.kill();
        dead_link.close();

        let stats = drain_until_all_done(&master);
        master.join();
        transport.shutdown();
        for (link, handle) in workers {
            handle.stop();
            link.close();
        }
        stats
    };

    assert_eq!(Outcome::of(&reference), Outcome::of(&networked));
    assert_eq!(networked.workflows_completed, 20);
    assert_eq!(networked.jobs_completed, expected_jobs);
    assert_eq!(networked.dead_lettered, 0);
}

/// Satellite drill: kill the master process mid-ensemble and restart it
/// on the same port from its workflow spool + WAL journal. Worker links
/// ride out the outage (reconnect + outbound-queue retry), and the
/// restarted master finishes the ensemble with the same outcome
/// invariants as an identically-shaped in-process recovery.
#[test]
fn master_kill_and_restart_recovers_over_tcp() {
    let n_workflows = 4usize;
    let workflows = montage_ensemble(n_workflows);
    let expected_jobs: u64 = workflows.iter().map(|w| w.job_count() as u64).sum();

    let scratch = std::env::temp_dir().join(format!("dewe-net-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let state_dir = scratch.join("state");
    let journal = scratch.join("master.wal");

    let config = |recover: bool| {
        MasterConfig::builder()
            .expected_workflows(n_workflows)
            .default_timeout_secs(30.0)
            .timeout_scan_interval(Duration::from_millis(20))
            .lease_secs(0.5)
            .journal_path(&journal)
            .recover(recover)
            .build()
    };

    // --- Networked arm -----------------------------------------------
    let transport = TcpMaster::bind(
        "127.0.0.1:0",
        TcpMasterOptions { state_dir: Some(state_dir.clone()), ..TcpMasterOptions::default() },
    )
    .unwrap();
    let addr = transport.local_addr();
    let master = spawn_master_on(transport.clone(), Registry::new(), config(false));

    let spawn_net_worker = |id: u32| {
        let registry = Registry::new();
        let link = TcpWorkerLink::connect(
            addr,
            registry.clone(),
            TcpWorkerOptions {
                worker_id: id,
                retry_interval: Duration::from_millis(25),
                ..TcpWorkerOptions::default()
            },
        )
        .unwrap();
        let handle = spawn_worker_on(
            Arc::new(link.clone()),
            registry,
            Arc::new(SleepRunner::new(0.0005)),
            WorkerConfig {
                worker_id: id,
                slots: 2,
                heartbeat_interval: Some(Duration::from_millis(50)),
                ..WorkerConfig::default()
            },
        );
        (link, handle)
    };
    let workers: Vec<_> = (0..2).map(spawn_net_worker).collect();

    for (i, wf) in workflows.iter().enumerate() {
        submit_over_tcp(addr, format!("montage-{i}"), wf).unwrap();
    }
    // Wait until every workflow is ingested (spooled) and some work has
    // actually happened, so the crash interrupts a busy ensemble.
    let deadline = Instant::now() + Duration::from_secs(30);
    while load_spool(&state_dir).unwrap().len() < n_workflows {
        assert!(Instant::now() < deadline, "workflows never spooled");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(200));

    // Crash: serve loop dies abruptly, endpoint drops with no Bye.
    master.kill();
    transport.kill();

    // Restart on the same port: registry from the spool, engine from
    // the journal. Worker links are still reconnecting.
    let transport2 = TcpMaster::bind(
        addr,
        TcpMasterOptions { state_dir: Some(state_dir.clone()), ..TcpMasterOptions::default() },
    )
    .unwrap();
    let registry2 = Registry::new();
    for (id, _name, wf) in load_spool(&state_dir).unwrap() {
        registry2.insert(id, wf);
    }
    let master2 = spawn_master_on(transport2.clone(), registry2, config(true));
    let stats = drain_until_all_done(&master2);
    master2.join();
    transport2.shutdown();
    for (link, handle) in workers {
        handle.stop();
        link.close();
    }

    assert_eq!(stats.workflows_completed, n_workflows);
    assert_eq!(stats.jobs_completed, expected_jobs);
    assert_eq!(stats.dead_lettered, 0);

    // --- In-process equivalence arm ----------------------------------
    // The same kill/recover drill on the in-process bus must land on the
    // same outcome invariants (recovery-equivalence across transports).
    let journal2 = scratch.join("inproc.wal");
    let config_inproc = |recover: bool| {
        MasterConfig::builder()
            .expected_workflows(n_workflows)
            .default_timeout_secs(30.0)
            .timeout_scan_interval(Duration::from_millis(20))
            .lease_secs(0.5)
            .journal_path(&journal2)
            .recover(recover)
            .build()
    };
    let bus = MessageBus::new();
    let registry = Registry::new();
    let master = spawn_master(bus.clone(), registry.clone(), config_inproc(false));
    let workers: Vec<_> = (0..2)
        .map(|id| {
            spawn_worker(
                bus.clone(),
                registry.clone(),
                Arc::new(SleepRunner::new(0.0005)),
                WorkerConfig {
                    worker_id: id,
                    slots: 2,
                    heartbeat_interval: Some(Duration::from_millis(50)),
                    ..WorkerConfig::default()
                },
            )
        })
        .collect();
    for (i, wf) in workflows.iter().enumerate() {
        submit(&bus, format!("montage-{i}"), Arc::clone(wf));
    }
    std::thread::sleep(Duration::from_millis(250));
    master.kill();
    let master2 = spawn_master(bus.clone(), registry, config_inproc(true));
    let inproc = drain_until_all_done(&master2);
    master2.join();
    for w in workers {
        w.stop();
    }

    assert_eq!(Outcome::of(&inproc), Outcome::of(&stats));
    let _ = std::fs::remove_dir_all(&scratch);
}
