//! End-to-end tests of the `dewectl` binary (spawned as a real process).

use std::path::PathBuf;
use std::process::Command;

fn dewectl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dewectl"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dewectl_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_inspect_roundtrip() {
    let dir = workdir("gen");
    let dag = dir.join("m.dag");
    let out = dewectl()
        .args(["gen", "montage", "1.0", dag.to_str().unwrap()])
        .output()
        .expect("run dewectl");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dag.exists());

    let out = dewectl().args(["inspect", dag.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("jobs          : 192"), "{text}");
    assert!(text.contains("mConcatFit"));
    // Montage legitimately produces unread byproducts (mDiffFit's diff
    // images feed nothing downstream; only the fit tables do) — the lint
    // must surface them.
    assert!(text.contains("UnreadFile"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn convert_to_dax_and_simulate() {
    let dir = workdir("convert");
    let dag = dir.join("s.dag");
    let dax = dir.join("s.dax");
    assert!(dewectl()
        .args(["gen", "sipht", "10", dag.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(dewectl()
        .args(["convert", dag.to_str().unwrap(), dax.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let dax_text = std::fs::read_to_string(&dax).unwrap();
    assert!(dax_text.contains("<adag"));

    let out = dewectl()
        .args(["simulate", dax.to_str().unwrap(), "--nodes", "2", "--type", "i2.8xlarge"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("makespan"), "{text}");
    assert!(text.contains("est. cost"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dot_emits_graphviz() {
    let dir = workdir("dot");
    let dag = dir.join("l.dag");
    assert!(dewectl()
        .args(["gen", "ligo", "2", "3", dag.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = dewectl().args(["dot", dag.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("->"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ensemble_manifest_runs() {
    let dir = workdir("ensemble");
    let dag = dir.join("e.dag");
    assert!(dewectl()
        .args(["gen", "epigenomics", "2", "3", dag.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    std::fs::write(
        dir.join("campaign.txt"),
        "WORKFLOW e.dag COUNT 3\nINTERVAL 10\nNODES 2\nTYPE r3.8xlarge\n",
    )
    .unwrap();
    let out =
        dewectl().args(["ensemble", dir.join("campaign.txt").to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 workflow instances on 2 x r3.8xlarge"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_export_is_valid_chrome_json() {
    let dir = workdir("trace");
    let dag = dir.join("c.dag");
    let json = dir.join("t.json");
    assert!(dewectl()
        .args(["gen", "cybershake", "20", dag.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(dewectl()
        .args(["simulate", dag.to_str().unwrap(), "--trace", json.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let text = std::fs::read_to_string(&json).unwrap();
    assert!(text.trim_start().starts_with('['));
    assert!(text.trim_end().ends_with(']'));
    // 44 jobs => 44 "job" category events.
    assert_eq!(text.matches(r#""cat":"job""#).count(), 44);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = dewectl().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = dewectl().args(["inspect", "/nonexistent/file.dag"]).output().unwrap();
    assert!(!out.status.success());
    let out = dewectl().args(["simulate", "/nonexistent.dag"]).output().unwrap();
    assert!(!out.status.success());
}
