//! Cross-crate integration on the simulated runtime: calibration
//! invariants at paper scale, cross-engine comparisons, determinism and
//! conservation laws.

use std::sync::Arc;

use dewe::baseline::{run_ensemble as run_baseline, BaselineConfig};
use dewe::core::sim::{run_ensemble, NodeFault, SimRunConfig, SubmissionPlan};
use dewe::montage::MontageConfig;
use dewe::simcloud::{
    ClusterConfig, SharedFsKind, StorageConfig, C3_8XLARGE, I2_8XLARGE, R3_8XLARGE,
};

fn local(nodes: usize) -> ClusterConfig {
    ClusterConfig { instance: C3_8XLARGE, nodes, storage: StorageConfig::LocalDisk }
}

/// The paper's headline single-workflow calibration: a 6.0-degree Montage
/// on one c3.8xlarge takes ~600 s with DEWE v2 and roughly twice that with
/// the scheduling baseline (paper: 600 s vs 1240 s).
#[test]
fn six_degree_calibration_anchor() {
    let wf = Arc::new(MontageConfig::degree(6.0).build());
    let d = run_ensemble(&[Arc::clone(&wf)], &SimRunConfig::new(local(1)));
    assert!(d.completed);
    assert!(
        (500.0..750.0).contains(&d.makespan_secs),
        "DEWE 6-degree makespan {} out of calibration band",
        d.makespan_secs
    );
    let p = run_baseline(&[wf], &BaselineConfig::new(local(1)));
    assert!(p.completed);
    assert!(
        p.makespan_secs > 1.8 * d.makespan_secs,
        "baseline must be ~2x slower: {} vs {}",
        p.makespan_secs,
        d.makespan_secs
    );
    // The paper's data volumes: ~35 GB intermediates written per workflow.
    assert!(
        (30e9..45e9).contains(&d.total_bytes_written),
        "write volume {} GB",
        d.total_bytes_written / 1e9
    );
}

/// Work conservation: every job of every workflow is executed exactly once
/// (no faults), across engines and cluster shapes.
#[test]
fn work_conservation_across_engines() {
    let wf = Arc::new(MontageConfig::degree(1.0).build());
    let jobs = wf.job_count() as u64;
    for nodes in [1usize, 3] {
        let wfs: Vec<_> = (0..4).map(|_| Arc::clone(&wf)).collect();
        let cluster = ClusterConfig {
            instance: C3_8XLARGE,
            nodes,
            storage: StorageConfig::Shared(SharedFsKind::Nfs),
        };
        let d = run_ensemble(&wfs, &SimRunConfig::new(cluster));
        assert_eq!(d.engine.jobs_completed, 4 * jobs, "DEWE on {nodes} nodes");
        assert_eq!(d.engine.resubmissions, 0);
        let p = run_baseline(&wfs, &BaselineConfig::new(cluster));
        assert_eq!(p.jobs_executed, 4 * jobs, "baseline on {nodes} nodes");
    }
}

/// Identical configuration => bit-identical results, across engines.
#[test]
fn cross_engine_determinism() {
    let wf = Arc::new(MontageConfig::degree(1.0).build());
    let wfs: Vec<_> = (0..3).map(|_| Arc::clone(&wf)).collect();
    let cluster = ClusterConfig {
        instance: R3_8XLARGE,
        nodes: 2,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    };
    let d1 = run_ensemble(&wfs, &SimRunConfig::new(cluster));
    let d2 = run_ensemble(&wfs, &SimRunConfig::new(cluster));
    assert_eq!(d1.makespan_secs, d2.makespan_secs);
    assert_eq!(d1.total_bytes_read, d2.total_bytes_read);
    assert_eq!(d1.workflow_makespans, d2.workflow_makespans);
    let b1 = run_baseline(&wfs, &BaselineConfig::new(cluster));
    let b2 = run_baseline(&wfs, &BaselineConfig::new(cluster));
    assert_eq!(b1.makespan_secs, b2.makespan_secs);
}

/// Instance types differ only where the paper says they should: stage-3
/// I/O. The i2 cluster must never be slower than c3 on the same workload.
#[test]
fn disk_capability_ordering() {
    let wfs: Vec<_> = (0..6).map(|_| Arc::new(MontageConfig::degree(2.0).build())).collect();
    let mut times = Vec::new();
    for itype in [C3_8XLARGE, R3_8XLARGE, I2_8XLARGE] {
        let cluster =
            ClusterConfig { instance: itype, nodes: 1, storage: StorageConfig::LocalDisk };
        let r = run_ensemble(&wfs, &SimRunConfig::new(cluster));
        times.push(r.makespan_secs);
    }
    assert!(times[2] <= times[1] + 1.0, "i2 {} vs r3 {}", times[2], times[1]);
    assert!(times[1] <= times[0] + 1.0, "r3 {} vs c3 {}", times[1], times[0]);
}

/// Faults never lose work: with a kill+restart, everything still completes
/// and at least the in-flight jobs are re-executed.
#[test]
fn fault_injection_preserves_completion() {
    let wf = Arc::new(MontageConfig::degree(1.0).build());
    let mut cfg = SimRunConfig::new(local(2));
    cfg.default_timeout_secs = 30.0;
    cfg.timeout_scan_secs = 1.0;
    cfg.faults = vec![
        NodeFault { node: 0, kill_at_secs: 3.0, restart_at_secs: Some(6.0) },
        NodeFault { node: 1, kill_at_secs: 40.0, restart_at_secs: Some(45.0) },
    ];
    let r = run_ensemble(&[Arc::clone(&wf)], &cfg);
    assert!(r.completed);
    assert_eq!(r.engine.jobs_completed, wf.job_count() as u64);
    assert!(r.engine.resubmissions > 0);
}

/// A permanently dead node (no restart) still leaves a live cluster able
/// to finish.
#[test]
fn permanent_node_loss_is_survivable() {
    let wf = Arc::new(MontageConfig::degree(1.0).build());
    let mut cfg = SimRunConfig::new(local(2));
    cfg.default_timeout_secs = 20.0;
    cfg.timeout_scan_secs = 1.0;
    cfg.faults = vec![NodeFault { node: 1, kill_at_secs: 5.0, restart_at_secs: None }];
    let r = run_ensemble(&[wf], &cfg);
    assert!(r.completed, "surviving node must finish the ensemble");
}

/// Incremental submission preserves total work and per-workflow makespans
/// stay near the single-workflow baseline when intervals are wide.
#[test]
fn wide_intervals_isolate_workflows() {
    let wf = Arc::new(MontageConfig::degree(1.0).build());
    let solo = run_ensemble(&[Arc::clone(&wf)], &SimRunConfig::new(local(1)));
    let wfs: Vec<_> = (0..3).map(|_| Arc::clone(&wf)).collect();
    let mut cfg = SimRunConfig::new(local(1));
    // Interval far larger than the single-workflow makespan: no overlap.
    cfg.submission = SubmissionPlan::Interval(solo.makespan_secs * 2.0);
    let r = run_ensemble(&wfs, &cfg);
    assert!(r.completed);
    for &m in &r.workflow_makespans {
        assert!(
            (m - solo.makespan_secs).abs() / solo.makespan_secs < 0.05,
            "isolated workflow makespan {m} vs solo {}",
            solo.makespan_secs
        );
    }
}

/// Cost model integration: a sub-hour run on N nodes bills exactly N
/// node-hours.
#[test]
fn billing_integration() {
    let wf = Arc::new(MontageConfig::degree(1.0).build());
    let cluster = ClusterConfig {
        instance: I2_8XLARGE,
        nodes: 3,
        storage: StorageConfig::Shared(SharedFsKind::DistFs),
    };
    let r = run_ensemble(&[wf], &SimRunConfig::new(cluster));
    assert!(r.makespan_secs < 3600.0);
    assert!((r.cost_usd - 3.0 * 6.82).abs() < 1e-9);
}
